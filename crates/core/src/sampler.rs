//! Hypercube perturbation sampling (the paper's neighbourhood definition).
//!
//! The paper defines the neighbourhood of `x` as the hypercube
//! `{p : ∀i, |p_i − x_i| ≤ r}` with "edge length" `r` (so `r` is the
//! half-width of the cube; we keep the paper's naming). Lemma 1 and
//! Theorem 2 require the perturbed instances to be *independently and
//! uniformly* sampled from this continuous set — that is exactly what
//! [`sample_in_hypercube`] does, with no clamping to the data domain
//! (clamping would concentrate mass on faces and break the probability-1
//! arguments).

use openapi_linalg::Vector;
use rand::Rng;

/// Draws one instance uniformly from the hypercube of edge `r` centred at
/// `x0` (`|p_i − x0_i| ≤ r` per coordinate).
///
/// # Panics
/// Panics when `r` is not finite and positive.
pub fn sample_in_hypercube<R: Rng>(x0: &[f64], r: f64, rng: &mut R) -> Vector {
    assert!(
        r.is_finite() && r > 0.0,
        "hypercube edge must be positive, got {r}"
    );
    Vector(x0.iter().map(|&c| c + rng.gen_range(-r..=r)).collect())
}

/// Draws `n` independent instances from the hypercube.
pub fn sample_many<R: Rng>(x0: &[f64], r: f64, n: usize, rng: &mut R) -> Vec<Vector> {
    (0..n).map(|_| sample_in_hypercube(x0, r, rng)).collect()
}

/// The ZOO probe pattern: for each axis `i`, the pair
/// `(x0 + h·e_i, x0 − h·e_i)` used by symmetric difference quotients.
///
/// # Panics
/// Panics when `h` is not finite and positive.
pub fn axis_pairs(x0: &[f64], h: f64) -> Vec<(Vector, Vector)> {
    assert!(
        h.is_finite() && h > 0.0,
        "probe distance must be positive, got {h}"
    );
    (0..x0.len())
        .map(|i| {
            let mut plus = x0.to_vec();
            let mut minus = x0.to_vec();
            plus[i] += h;
            minus[i] -= h;
            (Vector(plus), Vector(minus))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_the_hypercube_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let x0 = [0.5, -2.0, 10.0];
        for _ in 0..200 {
            let s = sample_in_hypercube(&x0, 0.25, &mut rng);
            for i in 0..3 {
                assert!((s[i] - x0[i]).abs() <= 0.25 + 1e-12);
            }
        }
    }

    #[test]
    fn samples_fill_the_cube_not_just_the_faces() {
        // Mean distance from center along each axis should be ≈ r/2 for a
        // uniform draw (it would be ≈ r if we clamped to faces).
        let mut rng = StdRng::seed_from_u64(2);
        let x0 = [0.0];
        let r = 1.0;
        let mean_abs: f64 = (0..2000)
            .map(|_| sample_in_hypercube(&x0, r, &mut rng)[0].abs())
            .sum::<f64>()
            / 2000.0;
        assert!((mean_abs - 0.5).abs() < 0.05, "mean |x| = {mean_abs}");
    }

    #[test]
    fn sample_many_draws_independently() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = sample_many(&[0.0, 0.0], 1.0, 5, &mut rng);
        assert_eq!(xs.len(), 5);
        for i in 0..5 {
            for j in i + 1..5 {
                assert_ne!(xs[i], xs[j]);
            }
        }
    }

    #[test]
    fn no_clamping_outside_unit_domain() {
        // x0 at the domain corner: samples must spill outside [0, 1].
        let mut rng = StdRng::seed_from_u64(4);
        let xs = sample_many(&[0.0, 1.0], 0.5, 100, &mut rng);
        assert!(xs.iter().any(|s| s[0] < 0.0));
        assert!(xs.iter().any(|s| s[1] > 1.0));
    }

    #[test]
    fn axis_pairs_probe_one_coordinate_each() {
        let pairs = axis_pairs(&[1.0, 2.0, 3.0], 0.1);
        assert_eq!(pairs.len(), 3);
        let (p, m) = &pairs[1];
        assert_eq!(p.as_slice(), &[1.0, 2.1, 3.0]);
        assert_eq!(m.as_slice(), &[1.0, 1.9, 3.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_edge_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sample_in_hypercube(&[0.0], 0.0, &mut rng);
    }
}
