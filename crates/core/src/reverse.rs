//! Reverse engineering the PLM behind the API — the paper's stated future
//! work (§VI), built here as an extension.
//!
//! Within one locally linear region, the `C − 1` core-parameter pairs that
//! OpenAPI recovers against a reference class determine the *entire* local
//! classifier up to the softmax's inherent shift invariance: taking the
//! reference class's logit as 0, the reconstructed logits
//! `ẑ_{c'} = −(D_{c,c'}ᵀx + B_{c,c'})`, `ẑ_c = 0` reproduce the API's
//! probability outputs exactly throughout the region. That yields:
//!
//! * [`ReconstructedPlm`] — a drop-in [`PredictionApi`] clone of the hidden
//!   model, valid on the region of the probed instance.
//! * [`agreement_rate`] — validation: fraction of probe points where the
//!   clone matches the API within tolerance.
//! * [`boundary_probe`] — a bisection that finds the distance to the
//!   region's boundary along a direction, using the clone as the membership
//!   test (predictions diverge exactly when the region ends).

use crate::error::InterpretError;
use crate::openapi::{OpenApiConfig, OpenApiInterpreter};
use crate::sampler::sample_in_hypercube;
use openapi_api::{softmax, PredictionApi};
use openapi_linalg::Vector;
use rand::Rng;

/// The local classifier reconstructed from one OpenAPI run, anchored at a
/// reference class.
#[derive(Debug, Clone)]
pub struct ReconstructedPlm {
    reference_class: usize,
    /// `weights[c']` holds `D_{ref,c'}`; the reference class's slot is a
    /// zero vector.
    weights: Vec<Vector>,
    /// `biases[c']` holds `B_{ref,c'}`; zero at the reference slot.
    biases: Vec<f64>,
    dim: usize,
}

impl ReconstructedPlm {
    /// Reconstructs the local classifier at `x0` by running OpenAPI once
    /// with `x0`'s predicted class as the reference.
    ///
    /// # Errors
    /// Propagates OpenAPI's errors.
    pub fn extract<M: PredictionApi, R: Rng>(
        api: &M,
        x0: &Vector,
        config: &OpenApiConfig,
        rng: &mut R,
    ) -> Result<Self, InterpretError> {
        let reference_class = api.predict_label(x0.as_slice());
        let result =
            OpenApiInterpreter::new(config.clone()).interpret(api, x0, reference_class, rng)?;
        let c_total = api.num_classes();
        let dim = api.dim();
        let mut weights = vec![Vector::zeros(dim); c_total];
        let mut biases = vec![0.0; c_total];
        for p in &result.interpretation.pairwise {
            weights[p.c_prime] = p.weights.clone();
            biases[p.c_prime] = p.bias;
        }
        Ok(ReconstructedPlm {
            reference_class,
            weights,
            biases,
            dim,
        })
    }

    /// The class whose logit is pinned to zero.
    pub fn reference_class(&self) -> usize {
        self.reference_class
    }

    /// Reconstructed logits (shift-normalized: reference class at 0).
    ///
    /// # Panics
    /// Panics when `x.len() != dim()`.
    pub fn logits(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.dim, "ReconstructedPlm: dimension mismatch");
        Vector(
            self.weights
                .iter()
                .zip(self.biases.iter())
                .enumerate()
                .map(|(c, (w, b))| {
                    if c == self.reference_class {
                        0.0
                    } else {
                        // ln(y_ref/y_c) = D·x + B  ⇒  z_c − z_ref = −(D·x + B).
                        -(w.dot(&Vector(x.to_vec())).expect("dim checked") + b)
                    }
                })
                .collect(),
        )
    }
}

impl PredictionApi for ReconstructedPlm {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.weights.len()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        softmax(self.logits(x).as_slice())
    }
}

/// Fraction of `n` probe points (hypercube edge `radius` around `x0`) where
/// the reconstruction matches the API within `tol` in max-probability
/// distance.
pub fn agreement_rate<M: PredictionApi, R: Rng>(
    api: &M,
    recon: &ReconstructedPlm,
    x0: &Vector,
    radius: f64,
    n: usize,
    tol: f64,
    rng: &mut R,
) -> f64 {
    assert!(n > 0, "need at least one probe");
    let mut agree = 0usize;
    for _ in 0..n {
        let p = sample_in_hypercube(x0.as_slice(), radius, rng);
        let a = api.predict(p.as_slice());
        let b = recon.predict(p.as_slice());
        let gap = a
            .iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max);
        if gap <= tol {
            agree += 1;
        }
    }
    agree as f64 / n as f64
}

/// Finds the distance to `x0`'s region boundary along `direction` by
/// bisection, using prediction disagreement between the API and the
/// reconstruction as the membership test.
///
/// Returns `None` when even `max_radius` stays inside the region (no
/// boundary within reach). Otherwise the returned distance `t` satisfies:
/// agreement at `t`, disagreement at `t + resolution` (up to the bisection
/// resolution).
///
/// # Panics
/// Panics on a zero direction, non-positive `max_radius`/`resolution`, or a
/// dimension mismatch.
pub fn boundary_probe<M: PredictionApi>(
    api: &M,
    recon: &ReconstructedPlm,
    x0: &Vector,
    direction: &Vector,
    max_radius: f64,
    resolution: f64,
    tol: f64,
) -> Option<f64> {
    assert_eq!(direction.len(), x0.len(), "direction dimension mismatch");
    assert!(max_radius > 0.0 && resolution > 0.0, "bad probe radii");
    let norm = direction.norm_l2();
    assert!(norm > 0.0, "zero probe direction");
    let unit = direction.scaled(1.0 / norm);

    let disagrees = |t: f64| {
        let p = x0 + &unit.scaled(t);
        let a = api.predict(p.as_slice());
        let b = recon.predict(p.as_slice());
        a.iter()
            .zip(b.iter())
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max)
            > tol
    };

    if !disagrees(max_radius) {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, max_radius);
    while hi - lo > resolution {
        let mid = 0.5 * (lo + hi);
        if disagrees(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_model() -> LinearSoftmaxModel {
        let w =
            Matrix::from_rows(&[&[1.0, -0.5, 0.3], &[0.0, 2.0, -0.7], &[-1.5, 0.5, 0.2]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.05]))
    }

    fn two_region_model() -> TwoRegionPlm {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-1.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        TwoRegionPlm::axis_split(0, 0.5, low, high)
    }

    #[test]
    fn reconstruction_reproduces_probabilities_exactly_in_region() {
        let api = linear_model();
        let x0 = Vector(vec![0.2, -0.1, 0.4]);
        let mut rng = StdRng::seed_from_u64(1);
        let recon =
            ReconstructedPlm::extract(&api, &x0, &OpenApiConfig::default(), &mut rng).unwrap();
        // A single-region model: agreement everywhere, at tight tolerance.
        let rate = agreement_rate(&api, &recon, &x0, 2.0, 200, 1e-8, &mut rng);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn reconstruction_is_region_local_for_multi_region_models() {
        let api = two_region_model();
        let x0 = Vector(vec![0.2, 0.1]); // low region, margin 0.3
        let mut rng = StdRng::seed_from_u64(2);
        let recon =
            ReconstructedPlm::extract(&api, &x0, &OpenApiConfig::default(), &mut rng).unwrap();
        // Inside the region: perfect agreement.
        let near = agreement_rate(&api, &recon, &x0, 0.05, 100, 1e-8, &mut rng);
        assert_eq!(near, 1.0);
        // A cube spanning both regions: agreement breaks on the far side.
        let far = agreement_rate(&api, &recon, &x0, 1.0, 400, 1e-8, &mut rng);
        assert!(far < 1.0, "should disagree on the other region, rate {far}");
        assert!(far > 0.4, "should agree on this region's share, rate {far}");
    }

    #[test]
    fn boundary_probe_finds_the_known_boundary() {
        let api = two_region_model();
        let x0 = Vector(vec![0.2, 0.0]); // boundary at x0 + 0.3 along e_0
        let mut rng = StdRng::seed_from_u64(3);
        let recon =
            ReconstructedPlm::extract(&api, &x0, &OpenApiConfig::default(), &mut rng).unwrap();
        let dir = Vector(vec![1.0, 0.0]);
        let t = boundary_probe(&api, &recon, &x0, &dir, 2.0, 1e-6, 1e-9).expect("boundary exists");
        assert!((t - 0.3).abs() < 1e-4, "boundary at {t}, expected 0.3");
        // Opposite direction: no boundary within 0.1.
        let away = Vector(vec![-1.0, 0.0]);
        assert!(boundary_probe(&api, &recon, &x0, &away, 0.1, 1e-6, 1e-9).is_none());
    }

    #[test]
    fn reference_class_logit_is_pinned_to_zero() {
        let api = linear_model();
        let x0 = Vector(vec![0.5, 0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(4);
        let recon =
            ReconstructedPlm::extract(&api, &x0, &OpenApiConfig::default(), &mut rng).unwrap();
        let z = recon.logits(&[1.0, 2.0, 3.0]);
        assert_eq!(z[recon.reference_class()], 0.0);
    }

    #[test]
    fn reconstructed_labels_match_api_labels_in_region() {
        let api = linear_model();
        let x0 = Vector(vec![0.0, 0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let recon =
            ReconstructedPlm::extract(&api, &x0, &OpenApiConfig::default(), &mut rng).unwrap();
        for _ in 0..100 {
            let p = sample_in_hypercube(x0.as_slice(), 3.0, &mut rng);
            assert_eq!(
                api.predict_label(p.as_slice()),
                recon.predict_label(p.as_slice())
            );
        }
    }
}
