//! Assembly and solving of the interpretation equation systems (§IV-B).
//!
//! Equation 2 turns every queried instance `(xⁱ, yⁱ)` into one linear
//! equation per class contrast:
//!
//! ```text
//! D_{c,c'}ᵀ xⁱ + B_{c,c'} = ln(yⁱ_c / yⁱ_{c'})
//! ```
//!
//! The *coefficient matrix* `[1 | xⁱ]` depends only on the sampled
//! instances — it is shared across all `C − 1` contrasts — while the
//! right-hand side depends on the class pair. [`ConsistencySolver`] exploits
//! this: it factors the matrix once (LU of the leading square block, or QR
//! of the full system) and then checks every contrast with cheap
//! back-substitutions. For `C = 10`, that is a 9× saving over re-factoring
//! per contrast, without changing any semantics of Algorithm 1.

use crate::decision::PairwiseCoreParams;
use openapi_api::{log_ratio, PredictionApi};
use openapi_linalg::solve::ConsistencyStrategy;
use openapi_linalg::{LinalgError, LuFactor, Matrix, QrFactor, Vector};

/// One queried instance and the API's prediction for it.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// The instance submitted to the API.
    pub x: Vector,
    /// The probability vector the API returned.
    pub probs: Vector,
}

impl Probe {
    /// Queries `api` at `x` and records the answer.
    pub fn query<M: PredictionApi>(api: &M, x: Vector) -> Self {
        let probs = api.predict(x.as_slice());
        Probe { x, probs }
    }
}

/// The assembled equation system for a fixed set of probes.
///
/// Row `i` of the coefficient matrix is `[1, xⁱ_1, …, xⁱ_d]` (bias column
/// first); the unknown vector is `[B_{c,c'}, D_{c,c'}]`.
#[derive(Debug, Clone)]
pub struct EquationSystem {
    coeffs: Matrix,
    probes: Vec<Probe>,
}

impl EquationSystem {
    /// Builds the system from probes (the first probe is conventionally the
    /// instance being interpreted, `x⁰`).
    ///
    /// # Panics
    /// Panics when `probes` is empty or dimensions are inconsistent.
    pub fn new(probes: Vec<Probe>) -> Self {
        assert!(!probes.is_empty(), "equation system needs probes");
        let d = probes[0].x.len();
        assert!(
            probes.iter().all(|p| p.x.len() == d),
            "probe dimensions inconsistent"
        );
        let coeffs = Matrix::from_fn(probes.len(), d + 1, |r, c| {
            if c == 0 {
                1.0
            } else {
                probes[r].x[c - 1]
            }
        });
        EquationSystem { coeffs, probes }
    }

    /// Number of equations (probes).
    pub fn rows(&self) -> usize {
        self.probes.len()
    }

    /// Number of unknowns (`d + 1`).
    pub fn unknowns(&self) -> usize {
        self.coeffs.cols()
    }

    /// The right-hand side for contrast `(c, c')`: `ln(yⁱ_c / yⁱ_{c'})` per
    /// probe.
    ///
    /// # Panics
    /// Panics when either class index is out of range.
    pub fn rhs(&self, c: usize, c_prime: usize) -> Vec<f64> {
        self.probes
            .iter()
            .map(|p| log_ratio(p.probs.as_slice(), c, c_prime))
            .collect()
    }

    /// Borrow the coefficient matrix.
    pub fn coefficients(&self) -> &Matrix {
        &self.coeffs
    }

    /// Borrow the probes.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }
}

/// Splits a solved unknown vector `[B, D…]` into core parameters.
fn unpack(solution: Vector, c_prime: usize) -> PairwiseCoreParams {
    let bias = solution[0];
    let weights = Vector(solution.as_slice()[1..].to_vec());
    PairwiseCoreParams {
        c_prime,
        weights,
        bias,
    }
}

/// Verdict for one contrast from [`ConsistencySolver::check`].
#[derive(Debug, Clone)]
pub struct ContrastVerdict {
    /// The candidate core parameters (meaningful when `consistent`).
    pub params: PairwiseCoreParams,
    /// Residual magnitude used for the verdict.
    pub residual: f64,
    /// Threshold the residual was compared against.
    pub threshold: f64,
    /// Whether the overdetermined system was consistent.
    pub consistent: bool,
}

/// Factor-once solver for an *overdetermined* system (`rows ≥ unknowns + 1`)
/// checked against many right-hand sides.
#[derive(Debug)]
pub struct ConsistencySolver {
    strategy: ConsistencyStrategy,
    rtol: f64,
    coeffs: Matrix,
    lu: Option<LuFactor>,
    qr: Option<QrFactor>,
}

impl ConsistencySolver {
    /// Factors the coefficient matrix.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] when the system is not
    ///   overdetermined.
    /// * [`LinalgError::Singular`] (LU path) when the leading square block
    ///   degenerates — per Lemma 1 this is a probability-0 sampling accident;
    ///   Algorithm 1 treats it as "resample".
    pub fn new(
        system: &EquationSystem,
        strategy: ConsistencyStrategy,
        rtol: f64,
    ) -> Result<Self, LinalgError> {
        let (m, n) = (system.rows(), system.unknowns());
        if m <= n {
            return Err(LinalgError::DimensionMismatch {
                op: "ConsistencySolver (rows > unknowns required)",
                expected: n + 1,
                found: m,
            });
        }
        let coeffs = system.coefficients().clone();
        let (lu, qr) = match strategy {
            ConsistencyStrategy::SquareThenCheck => {
                let head = Matrix::from_fn(n, n, |r, c| coeffs[(r, c)]);
                (Some(LuFactor::new(&head)?), None)
            }
            ConsistencyStrategy::LeastSquares => (None, Some(QrFactor::new(&coeffs)?)),
        };
        Ok(ConsistencySolver {
            strategy,
            rtol,
            coeffs,
            lu,
            qr,
        })
    }

    /// Checks one contrast's right-hand side for consistency.
    ///
    /// # Errors
    /// [`LinalgError::RankDeficient`] on the QR path when the factored
    /// matrix was rank deficient (treated as "resample" by Algorithm 1).
    ///
    /// # Panics
    /// Panics when `rhs.len() != rows`.
    pub fn check(&self, rhs: &[f64], c_prime: usize) -> Result<ContrastVerdict, LinalgError> {
        let (m, n) = (self.coeffs.rows(), self.coeffs.cols());
        assert_eq!(rhs.len(), m, "rhs length mismatch");
        let bscale = rhs.iter().fold(0.0f64, |s, v| s.max(v.abs())).max(1.0);
        let threshold = self.rtol * bscale;
        match self.strategy {
            ConsistencyStrategy::SquareThenCheck => {
                let lu = self.lu.as_ref().expect("strategy invariant");
                let solution = lu.solve(&rhs[..n])?;
                let mut worst = 0.0f64;
                #[allow(clippy::needless_range_loop)] // held-out-row sweep reads clearest indexed
                for r in n..m {
                    let pred: f64 = self
                        .coeffs
                        .row(r)
                        .iter()
                        .zip(solution.iter())
                        .map(|(a, s)| a * s)
                        .sum();
                    worst = worst.max((pred - rhs[r]).abs());
                }
                Ok(ContrastVerdict {
                    params: unpack(solution, c_prime),
                    residual: worst,
                    threshold,
                    consistent: worst <= threshold,
                })
            }
            ConsistencyStrategy::LeastSquares => {
                let qr = self.qr.as_ref().expect("strategy invariant");
                let (solution, residual) = qr.solve_lstsq(rhs)?;
                Ok(ContrastVerdict {
                    params: unpack(solution, c_prime),
                    residual,
                    threshold,
                    consistent: residual <= threshold,
                })
            }
        }
    }
}

/// Solves a *determined* system (`rows == unknowns`) exactly — the naive
/// method's `Ω_{d+1}` (and the ideal case of §IV-B).
///
/// # Errors
/// Factorization errors ([`LinalgError::Singular`] etc.).
///
/// # Panics
/// Panics when the system is not square.
pub fn solve_determined(
    system: &EquationSystem,
    c: usize,
    c_prime: usize,
) -> Result<PairwiseCoreParams, LinalgError> {
    assert_eq!(
        system.rows(),
        system.unknowns(),
        "determined solve needs rows == unknowns"
    );
    let lu = LuFactor::new(system.coefficients())?;
    let solution = lu.solve(&system.rhs(c, c_prime))?;
    Ok(unpack(solution, c_prime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::sample_many;
    use openapi_api::LinearSoftmaxModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// d = 3, C = 3 linear model: the whole space is one region, so every
    /// probe set yields consistent systems with the exact core parameters.
    fn model() -> LinearSoftmaxModel {
        let w = Matrix::from_rows(&[&[1.0, -0.5, 0.25], &[0.0, 2.0, -1.0], &[-1.5, 0.5, 0.75]])
            .unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.3]))
    }

    fn probes_for(api: &LinearSoftmaxModel, n: usize, seed: u64) -> Vec<Probe> {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Vector(vec![0.2, -0.1, 0.4]);
        let mut probes = vec![Probe::query(api, x0.clone())];
        for x in sample_many(x0.as_slice(), 0.5, n - 1, &mut rng) {
            probes.push(Probe::query(api, x));
        }
        probes
    }

    #[test]
    fn coefficient_layout_is_bias_first() {
        let api = model();
        let sys = EquationSystem::new(probes_for(&api, 2, 1));
        assert_eq!(sys.unknowns(), 4);
        assert_eq!(sys.coefficients()[(0, 0)], 1.0);
        assert_eq!(sys.coefficients()[(1, 0)], 1.0);
        assert_eq!(sys.coefficients()[(0, 1)], 0.2);
    }

    #[test]
    fn rhs_is_log_ratio_per_probe() {
        let api = model();
        let sys = EquationSystem::new(probes_for(&api, 3, 2));
        let rhs = sys.rhs(0, 2);
        for (i, p) in sys.probes().iter().enumerate() {
            let expect = p.probs[0].ln() - p.probs[2].ln();
            assert!((rhs[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn determined_solve_recovers_exact_core_params() {
        let api = model();
        // d + 1 = 4 probes: square system.
        let sys = EquationSystem::new(probes_for(&api, 4, 3));
        let truth = api.local();
        for c_prime in [1usize, 2] {
            let got = solve_determined(&sys, 0, c_prime).unwrap();
            let want_w = truth.pairwise_decision_features(0, c_prime);
            let want_b = truth.pairwise_bias(0, c_prime);
            assert!(got.weights.l1_distance(&want_w).unwrap() < 1e-8);
            assert!((got.bias - want_b).abs() < 1e-8);
        }
    }

    #[test]
    fn consistency_solver_accepts_single_region_systems_both_strategies() {
        let api = model();
        // d + 2 = 5 probes: overdetermined.
        let sys = EquationSystem::new(probes_for(&api, 5, 4));
        let truth = api.local();
        for strategy in [
            ConsistencyStrategy::SquareThenCheck,
            ConsistencyStrategy::LeastSquares,
        ] {
            let solver = ConsistencySolver::new(&sys, strategy, 1e-7).unwrap();
            for c_prime in [1usize, 2] {
                let v = solver.check(&sys.rhs(0, c_prime), c_prime).unwrap();
                assert!(
                    v.consistent,
                    "{strategy:?} contrast {c_prime}: residual {}",
                    v.residual
                );
                let want = truth.pairwise_decision_features(0, c_prime);
                assert!(v.params.weights.l1_distance(&want).unwrap() < 1e-7);
            }
        }
    }

    #[test]
    fn corrupted_probe_breaks_consistency() {
        let api = model();
        let mut probes = probes_for(&api, 5, 5);
        // Corrupt the last probe's prediction, as if it came from a
        // different locally linear region.
        let last = probes.last_mut().unwrap();
        last.probs = Vector(vec![0.80, 0.15, 0.05]);
        let sys = EquationSystem::new(probes);
        for strategy in [
            ConsistencyStrategy::SquareThenCheck,
            ConsistencyStrategy::LeastSquares,
        ] {
            let solver = ConsistencySolver::new(&sys, strategy, 1e-7).unwrap();
            let v = solver.check(&sys.rhs(0, 1), 1).unwrap();
            assert!(!v.consistent, "{strategy:?} must flag the corrupted probe");
        }
    }

    #[test]
    fn solver_rejects_non_overdetermined_systems() {
        let api = model();
        let sys = EquationSystem::new(probes_for(&api, 4, 6)); // square
        assert!(ConsistencySolver::new(&sys, ConsistencyStrategy::LeastSquares, 1e-7).is_err());
    }

    #[test]
    fn duplicate_probes_surface_as_singular_for_lu_path() {
        let api = model();
        let mut probes = probes_for(&api, 5, 7);
        probes[2] = probes[1].clone(); // degenerate sampling
        let sys = EquationSystem::new(probes);
        let r = ConsistencySolver::new(&sys, ConsistencyStrategy::SquareThenCheck, 1e-7);
        assert!(matches!(r, Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn same_class_contrast_is_trivially_consistent_zero() {
        let api = model();
        let sys = EquationSystem::new(probes_for(&api, 5, 8));
        let solver = ConsistencySolver::new(&sys, ConsistencyStrategy::LeastSquares, 1e-9).unwrap();
        let v = solver.check(&sys.rhs(1, 1), 1).unwrap();
        assert!(v.consistent);
        assert!(v.params.weights.norm_linf() < 1e-9);
        assert!(v.params.bias.abs() < 1e-9);
    }
}
