#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! The paper's contribution: **OpenAPI** — exact and consistent
//! interpretation of piecewise linear models hidden behind APIs — plus every
//! method it is evaluated against.
//!
//! # Map from paper to module
//!
//! | Paper | Module |
//! |---|---|
//! | §IV-A decision features `D_c`, core parameters `(D_{c,c'}, B_{c,c'})` | [`decision`] |
//! | §IV-B Equation 2 systems `Ω_{d+1}`, `Ω_{d+2}` | [`equations`] |
//! | §IV-B the naive method (Theorem 1's failure mode included) | [`naive`] |
//! | §IV-C Algorithm 1, OpenAPI | [`openapi`] |
//! | hypercube sampling (Lemma 1's continuity requirement) | [`sampler`] |
//! | §V baselines: LIME (linear/ridge), ZOO, Saliency, Gradient*Input, Integrated Gradients | [`baselines`] |
//! | §VI future work: reverse-engineering the PLM behind the API | [`reverse`] |
//! | extension: region-extent bracketing via consistency growth | [`region`] |
//! | extension: Theorem-2 region cache (shared by batch + serving tiers) | [`cache`] |
//! | extension: region-deduplicating batch interpretation | [`batch`] |
//! | uniform method dispatch for the experiment harness | [`method`] |
//!
//! The type system mirrors the threat model: black-box methods take any
//! [`openapi_api::PredictionApi`]; the gradient baselines additionally
//! require [`openapi_api::GradientOracle`] (the paper grants them parameter
//! access); nothing in this crate can see ground-truth regions.
//!
//! # Example
//!
//! Recover the exact local decision function of a model from prediction
//! queries alone, and check it against the (test-only) ground truth:
//!
//! ```
//! use openapi_api::{GroundTruthOracle, LinearSoftmaxModel};
//! use openapi_core::openapi::{OpenApiConfig, OpenApiInterpreter};
//! use openapi_linalg::{Matrix, Vector};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // The hidden model: d = 4, C = 3. The interpreter only ever calls
//! // its `predict` — parameters stay invisible.
//! let model = LinearSoftmaxModel::new(
//!     Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) % 5) as f64 * 0.25 - 0.5),
//!     Vector(vec![0.1, -0.2, 0.05]),
//! );
//! let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = Vector(vec![0.3, -0.1, 0.7, 0.2]);
//! let result = interpreter.interpret(&model, &x, 1, &mut rng).unwrap();
//!
//! // Closed form means exact: the recovered decision features match the
//! // model's own local linear function at x (Equation 1) to round-off.
//! let truth = model.local_model(x.as_slice()).decision_features(1);
//! let err = result
//!     .interpretation
//!     .decision_features
//!     .l1_distance(&truth)
//!     .unwrap();
//! assert!(err < 1e-7, "L1Dist {err}");
//! ```

pub mod baselines;
pub mod batch;
pub mod cache;
pub mod decision;
pub mod equations;
pub mod error;
pub mod method;
pub mod naive;
pub mod openapi;
pub mod region;
pub mod reverse;
pub mod rng;
pub mod sampler;

pub use batch::{BatchConfig, BatchInterpreter, BatchItem, BatchOutcome, BatchStats};
pub use cache::{CachedRegion, RegionCache, RegionCacheConfig};
pub use decision::{
    decision_features_from_pairwise, region_fingerprint, Interpretation, PairwiseCoreParams,
    RegionFingerprint,
};
pub use error::InterpretError;
pub use method::Method;
pub use naive::{NaiveConfig, NaiveInterpreter};
pub use openapi::{OpenApiConfig, OpenApiInterpreter, OpenApiResult};
