//! Uniform dispatch over every interpretation method, for the experiment
//! harness.
//!
//! The experiments iterate "for each method × instance × class"; [`Method`]
//! erases the per-method configuration differences behind one `attribution`
//! call. The bound is [`GradientOracle`] (the largest capability any method
//! needs); black-box methods simply never call the gradient entry points —
//! [`Method::is_black_box`] records which side of the paper's capability
//! split each method lives on.

use crate::baselines::gradient::{GradientInput, IntegratedGradients, SaliencyMaps};
use crate::baselines::lime::{LimeConfig, LimeInterpreter};
use crate::baselines::zoo::{ZooConfig, ZooInterpreter};
use crate::error::InterpretError;
use crate::naive::{NaiveConfig, NaiveInterpreter};
use crate::openapi::{OpenApiConfig, OpenApiInterpreter};
use openapi_api::GradientOracle;
use openapi_linalg::Vector;
use rand::Rng;

/// Any of the paper's eight interpretation methods, with its configuration.
#[derive(Debug, Clone)]
pub enum Method {
    /// OpenAPI (this paper).
    OpenApi(OpenApiConfig),
    /// The naive determined-system method `N(h)`.
    Naive(NaiveConfig),
    /// Linear-regression LIME `L(h)`.
    LimeLinear(LimeConfig),
    /// Ridge-regression LIME `R(h)`.
    LimeRidge(LimeConfig),
    /// ZOO symmetric-difference-quotient estimation `Z(h)`.
    Zoo(ZooConfig),
    /// Saliency Maps `S` (white-box).
    Saliency(SaliencyMaps),
    /// Gradient*Input `G` (white-box).
    GradientInput(GradientInput),
    /// Integrated Gradients `I` (white-box).
    IntegratedGradients(IntegratedGradients),
}

impl Method {
    /// Short display name matching the paper's figure legends
    /// (`OA`, `N(h)`, `L(h)`, `R(h)`, `Z(h)`, `S`, `G`, `I`).
    pub fn name(&self) -> String {
        match self {
            Method::OpenApi(_) => "OpenAPI".to_string(),
            Method::Naive(c) => format!("N({:.0e})", c.edge),
            Method::LimeLinear(c) => format!("L({:.0e})", c.perturbation_distance),
            Method::LimeRidge(c) => format!("R({:.0e})", c.perturbation_distance),
            Method::Zoo(c) => format!("Z({:.0e})", c.probe_distance),
            Method::Saliency(_) => "Saliency".to_string(),
            Method::GradientInput(_) => "Grad*Input".to_string(),
            Method::IntegratedGradients(_) => "IntegGrad".to_string(),
        }
    }

    /// `true` for methods that only need API access (the paper's black-box
    /// setting); `false` for the gradient methods that see parameters.
    pub fn is_black_box(&self) -> bool {
        !matches!(
            self,
            Method::Saliency(_) | Method::GradientInput(_) | Method::IntegratedGradients(_)
        )
    }

    /// `true` for methods that recover core parameters (and thus appear in
    /// the WD/exactness experiments with pairwise data).
    pub fn recovers_core_params(&self) -> bool {
        self.is_black_box()
    }

    /// Computes the attribution vector (`D_c` or the method's analogue) for
    /// `class` at `x0`.
    ///
    /// # Errors
    /// Propagates the wrapped method's errors.
    pub fn attribution<M: GradientOracle, R: Rng>(
        &self,
        model: &M,
        x0: &Vector,
        class: usize,
        rng: &mut R,
    ) -> Result<Vector, InterpretError> {
        Ok(self.interpret(model, x0, class, rng)?.decision_features)
    }

    /// Computes the full interpretation for `class` at `x0`.
    ///
    /// # Errors
    /// Propagates the wrapped method's errors.
    pub fn interpret<M: GradientOracle, R: Rng>(
        &self,
        model: &M,
        x0: &Vector,
        class: usize,
        rng: &mut R,
    ) -> Result<crate::decision::Interpretation, InterpretError> {
        match self {
            Method::OpenApi(cfg) => OpenApiInterpreter::new(cfg.clone())
                .interpret(model, x0, class, rng)
                .map(|r| r.interpretation),
            Method::Naive(cfg) => {
                NaiveInterpreter::new(cfg.clone()).interpret(model, x0, class, rng)
            }
            Method::LimeLinear(cfg) | Method::LimeRidge(cfg) => {
                LimeInterpreter::new(cfg.clone()).interpret(model, x0, class, rng)
            }
            Method::Zoo(cfg) => ZooInterpreter::new(cfg.clone()).interpret(model, x0, class),
            Method::Saliency(s) => s.interpret(model, x0, class),
            Method::GradientInput(g) => g.interpret(model, x0, class),
            Method::IntegratedGradients(ig) => ig.interpret(model, x0, class),
        }
    }

    /// The paper's Figure 3/4 line-up: `S`, `OA`, `I`, `G`, `L` (LIME at
    /// its customary `h = 0.25·√d⁻¹`-style default; here `h = 1e-2`).
    pub fn effectiveness_lineup() -> Vec<Method> {
        vec![
            Method::Saliency(SaliencyMaps::default()),
            Method::OpenApi(OpenApiConfig::default()),
            Method::IntegratedGradients(IntegratedGradients::default()),
            Method::GradientInput(GradientInput::default()),
            Method::LimeLinear(LimeConfig::linear(1e-2)),
        ]
    }

    /// The paper's Figures 5–7 line-up: OpenAPI plus every `h`-swept
    /// black-box baseline at `h ∈ {1e-8, 1e-4, 1e-2}`.
    pub fn quality_lineup() -> Vec<Method> {
        let hs = [1e-8, 1e-4, 1e-2];
        let mut methods = vec![Method::OpenApi(OpenApiConfig::default())];
        for &h in &hs {
            methods.push(Method::LimeLinear(LimeConfig::linear(h)));
        }
        for &h in &hs {
            methods.push(Method::LimeRidge(LimeConfig::ridge(h)));
        }
        for &h in &hs {
            methods.push(Method::Naive(NaiveConfig::with_edge(h)));
        }
        for &h in &hs {
            methods.push(Method::Zoo(ZooConfig::with_distance(h)));
        }
        methods
    }
}

impl Default for Method {
    fn default() -> Self {
        Method::OpenApi(OpenApiConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{GroundTruthOracle, LinearSoftmaxModel};
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LinearSoftmaxModel {
        // d = 2 features (rows), C = 3 classes (columns).
        let w = Matrix::from_rows(&[&[1.0, -1.0, 0.3], &[-0.5, 0.5, 0.9]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.0, 0.1, -0.1]))
    }

    #[test]
    fn names_follow_the_paper_legends() {
        assert_eq!(Method::default().name(), "OpenAPI");
        assert_eq!(
            Method::Naive(NaiveConfig::with_edge(1e-4)).name(),
            "N(1e-4)"
        );
        assert_eq!(
            Method::Zoo(ZooConfig::with_distance(1e-2)).name(),
            "Z(1e-2)"
        );
        assert_eq!(
            Method::LimeLinear(LimeConfig::linear(1e-8)).name(),
            "L(1e-8)"
        );
        assert_eq!(Method::LimeRidge(LimeConfig::ridge(1e-8)).name(), "R(1e-8)");
    }

    #[test]
    fn capability_split_matches_the_paper() {
        for m in Method::quality_lineup() {
            assert!(m.is_black_box(), "{} is black-box in the paper", m.name());
        }
        assert!(!Method::Saliency(SaliencyMaps::default()).is_black_box());
        assert!(!Method::GradientInput(GradientInput::default()).is_black_box());
        assert!(!Method::IntegratedGradients(IntegratedGradients::default()).is_black_box());
    }

    #[test]
    fn lineups_have_expected_sizes() {
        assert_eq!(Method::effectiveness_lineup().len(), 5);
        // OA + 4 baselines × 3 h values.
        assert_eq!(Method::quality_lineup().len(), 13);
    }

    #[test]
    fn every_method_produces_an_attribution() {
        let api = model();
        let x0 = Vector(vec![0.4, -0.2]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut all = Method::effectiveness_lineup();
        all.extend(Method::quality_lineup());
        for m in all {
            let a = m.attribution(&api, &x0, 0, &mut rng);
            let a = a.unwrap_or_else(|e| panic!("{} failed: {e}", m.name()));
            assert_eq!(a.len(), 2, "{}", m.name());
            assert!(
                a.is_finite(),
                "{} produced non-finite attribution",
                m.name()
            );
        }
    }

    #[test]
    fn exact_methods_agree_with_ground_truth_on_linear_model() {
        let api = model();
        let x0 = Vector(vec![0.4, -0.2]);
        let truth = api.local_model(x0.as_slice()).decision_features(1);
        let mut rng = StdRng::seed_from_u64(2);
        for m in [
            Method::default(),
            Method::Naive(NaiveConfig::with_edge(1e-2)),
            Method::Zoo(ZooConfig::with_distance(1e-4)),
            Method::LimeLinear(LimeConfig::linear(1e-2)),
        ] {
            let a = m.attribution(&api, &x0, 1, &mut rng).unwrap();
            let err = a.l1_distance(&truth).unwrap();
            assert!(err < 1e-5, "{}: L1Dist {err}", m.name());
        }
    }
}
