//! Deterministic per-item RNG derivation, shared by every tier.
//!
//! Both the eval harness's `parallel_map` fan-out and the `openapi-serve`
//! request workers need the same property: item/request `i` of a run keyed
//! by `seed` gets its own RNG stream, independent of scheduling, so fixed
//! workloads replay bit-identically. One implementation lives here so the
//! tiers can never drift apart.
//!
//! The seed and index are combined through a full SplitMix64 finalizer
//! rather than a bare `seed ^ index·φ` mix: under the bare mix, index 0
//! contributes nothing (`0·φ = 0`) and item 0's stream collides with any
//! direct `StdRng::seed_from_u64(seed)` use of the master seed elsewhere.
//! The finalizer keys every `(seed, index)` pair — including index 0 — to
//! an unrelated stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the RNG for item `index` of a run keyed by `seed`.
pub fn derived_rng(seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        seed ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)),
    ))
}

/// The SplitMix64 finalizer (Steele, Lea & Flood 2014): a bijective
/// avalanche mix, so distinct inputs keep distinct outputs.
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn distinct_indices_and_seeds_get_distinct_streams() {
        let mut first: Vec<u64> = Vec::new();
        for seed in [0u64, 1, 42] {
            for index in 0..8 {
                first.push(derived_rng(seed, index).gen());
            }
        }
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "stream collision");
    }

    #[test]
    fn index_zero_does_not_collide_with_the_master_seed() {
        let master: u64 = StdRng::seed_from_u64(42).gen();
        let item0: u64 = derived_rng(42, 0).gen();
        assert_ne!(master, item0);
    }
}
