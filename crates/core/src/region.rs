//! Region-extent estimation — how big is the locally linear region?
//!
//! Algorithm 1 only *shrinks* its hypercube until consistency holds; this
//! extension also *grows* it, bracketing the largest hypercube around `x⁰`
//! on which the recovered core parameters stay consistent. That bracket is
//! a query-only estimate of the locally linear region's inradius — useful
//! for choosing safe perturbation budgets (e.g. for the fixed-`h` baselines
//! this repository evaluates) and for characterizing a hidden model's
//! geometry, complementing `reverse::boundary_probe`'s directional probes.

use crate::equations::{ConsistencySolver, EquationSystem, Probe};
use crate::error::InterpretError;
use crate::openapi::{OpenApiConfig, OpenApiInterpreter};
use crate::sampler::sample_many;
use openapi_api::PredictionApi;
use openapi_linalg::Vector;
use rand::Rng;

/// The outcome of a region-extent probe.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeBracket {
    /// Largest tested hypercube edge whose samples were all consistent
    /// with `x⁰`'s core parameters.
    pub consistent_edge: f64,
    /// Smallest tested edge that produced an inconsistent system, when the
    /// growth phase found one (`None` means consistency held up to
    /// `max_edge` — the region extends beyond the probe budget).
    pub inconsistent_edge: Option<f64>,
    /// Total prediction queries spent (interpretation + growth probes).
    pub queries: usize,
}

/// Estimates the consistent-hypercube bracket around `x0` for `class`.
///
/// First runs OpenAPI to convergence (edge `r*`), then doubles the edge —
/// re-sampling `d + 1` fresh instances each step and re-checking all
/// `C − 1` contrasts — until a system turns inconsistent or `max_edge` is
/// reached. Each growth step costs `d + 1` queries.
///
/// The returned bracket is stochastic (a consistent draw at some edge does
/// not *prove* the whole cube lies in the region), but an inconsistent draw
/// at edge `r` **does** prove the region boundary intersects the `r`-cube —
/// so `inconsistent_edge` is a sound upper bound on the inradius while
/// `consistent_edge` is a probabilistic lower bound.
///
/// # Errors
/// Propagates [`OpenApiInterpreter::interpret`] errors from the initial
/// convergence run.
///
/// # Panics
/// Panics when `max_edge` is not positive/finite.
pub fn estimate_region_edge<M: PredictionApi, R: Rng>(
    api: &M,
    x0: &Vector,
    class: usize,
    config: &OpenApiConfig,
    max_edge: f64,
    rng: &mut R,
) -> Result<EdgeBracket, InterpretError> {
    assert!(
        max_edge.is_finite() && max_edge > 0.0,
        "max_edge must be positive"
    );
    let interpreter = OpenApiInterpreter::new(config.clone());
    let base = interpreter.interpret(api, x0, class, rng)?;
    let mut queries = base.queries;
    let d = api.dim();
    let c_total = api.num_classes();
    let x0_probe = Probe::query(api, x0.clone());
    queries += 1;

    let mut consistent_edge = base.final_edge;
    let mut edge = base.final_edge * 2.0;
    while edge <= max_edge {
        let samples = sample_many(x0.as_slice(), edge, d + 1, rng);
        let mut probes = Vec::with_capacity(d + 2);
        probes.push(x0_probe.clone());
        for x in samples {
            probes.push(Probe::query(api, x));
        }
        queries += d + 1;
        let system = EquationSystem::new(probes);
        let consistent = match ConsistencySolver::new(&system, config.strategy, config.rtol) {
            Ok(solver) => (0..c_total).filter(|&cp| cp != class).all(|cp| {
                solver
                    .check(&system.rhs(class, cp), cp)
                    .map(|v| v.consistent)
                    .unwrap_or(false)
            }),
            // Degenerate geometry counts as "not shown consistent".
            Err(_) => false,
        };
        if !consistent {
            return Ok(EdgeBracket {
                consistent_edge,
                inconsistent_edge: Some(edge),
                queries,
            });
        }
        consistent_edge = edge;
        edge *= 2.0;
    }
    Ok(EdgeBracket {
        consistent_edge,
        inconsistent_edge: None,
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_model() -> LinearSoftmaxModel {
        let w = Matrix::from_rows(&[&[1.0, -0.5], &[0.0, 2.0]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2]))
    }

    #[test]
    fn single_region_grows_to_the_budget() {
        let api = linear_model();
        let x0 = Vector(vec![0.3, 0.3]);
        let mut rng = StdRng::seed_from_u64(1);
        let bracket =
            estimate_region_edge(&api, &x0, 0, &OpenApiConfig::default(), 64.0, &mut rng).unwrap();
        assert_eq!(
            bracket.inconsistent_edge, None,
            "one region: never inconsistent"
        );
        assert!(
            bracket.consistent_edge >= 64.0,
            "edge {}",
            bracket.consistent_edge
        );
    }

    #[test]
    fn two_region_model_brackets_the_known_margin() {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -2.0], &[1.0, 0.5]]).unwrap(),
            Vector(vec![0.0, 0.2]),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[-1.0, 1.5], &[0.0, 3.0]]).unwrap(),
            Vector(vec![0.5, -0.5]),
        );
        let api = TwoRegionPlm::axis_split(0, 0.5, low, high);
        // Margin to the boundary: 0.4. A cube of edge > 0.4 can cross.
        let x0 = Vector(vec![0.1, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let bracket =
            estimate_region_edge(&api, &x0, 0, &OpenApiConfig::default(), 256.0, &mut rng).unwrap();
        let upper = bracket.inconsistent_edge.expect("boundary must be found");
        // The inconsistent edge is sound: a crossing cube must be > margin.
        assert!(
            upper > 0.4,
            "inconsistent edge {upper} below the true margin"
        );
        assert!(bracket.consistent_edge < upper);
        assert!(bracket.queries > 0);
    }

    #[test]
    fn boundary_budget_errors_propagate() {
        let low = LocalLinearModel::new(Matrix::zeros(2, 2), Vector(vec![1.0, 0.0]));
        let high = LocalLinearModel::new(Matrix::zeros(2, 2), Vector(vec![0.0, 1.0]));
        let api = TwoRegionPlm::axis_split(0, 0.5, low, high);
        // x0 exactly on the boundary with a tiny iteration budget: the
        // initial interpretation may fail — the error must surface.
        let x0 = Vector(vec![0.5, 0.0]);
        let cfg = OpenApiConfig {
            max_iterations: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let r = estimate_region_edge(&api, &x0, 0, &cfg, 4.0, &mut rng);
        // Either budget-exhausted (expected) or a success whose growth then
        // brackets; both are legal, but no panic.
        if let Ok(b) = r {
            assert!(b.consistent_edge > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_budget_panics() {
        let api = linear_model();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = estimate_region_edge(
            &api,
            &Vector(vec![0.0, 0.0]),
            0,
            &OpenApiConfig::default(),
            0.0,
            &mut rng,
        );
    }
}
