//! The region cache: Theorem 2 turned into a lookup structure.
//!
//! Every instance of a locally linear region recovers the **identical**
//! core parameters (Theorem 2), so interpretation results are cacheable per
//! *region*, not per instance. [`RegionCache`] owns the membership-probe
//! lookup, the canonical-fingerprint merge, and the collision fallback that
//! [`crate::batch::BatchInterpreter`] introduced — extracted here so the
//! single-threaded batch layer and the sharded concurrent cache in
//! `openapi-serve` share exactly one membership code path.
//!
//! Two lookup modes, both sound by Theorem 2:
//!
//! * [`RegionCache::lookup_probe`] — black-box: a cached region's parameters
//!   either explain the probed prediction at every contrast
//!   ([`Interpretation::explains_probe`]), in which case the probe lies in
//!   that region and the cached interpretation is *its* interpretation, or
//!   they don't and the scan moves on.
//! * [`RegionCache::lookup_region`] — white-box oracle fast path keyed on
//!   [`RegionId`], for evaluation and tests (zero queries per hit).
//!
//! # The blocked membership scan
//!
//! The black-box scan is the warm serving path's dominant cost, so it does
//! not walk per-entry heap allocations: alongside the entries, the cache
//! packs every boundary row of a class into one contiguous row-major
//! [`RowMatrix`] per `(class, dimension)` pair (a `ClassBlock`), rebuilt
//! incrementally on insert and eviction. A probe then runs as one batched
//! kernel pass per chunk of rows — `y = W·x + b` for every cached contrast,
//! Theorem-2 verdicts per region group — through the configured
//! [`Backend`]. The observed log-probability ratios are memoized per probe
//! (one `ln` per class instead of one per cached region), and
//! [`RegionCache::lookup_probe_batch`] additionally iterates chunk-outer /
//! probe-inner, running each chunk through the backend's *multi-probe*
//! kernel ([`Backend::boundary_eval_batch`]) so a whole batch shares one
//! sweep of the packed rows while they are hot in cache. Backends are
//! bit-identical by contract, so the verdicts do not depend on which one
//! is configured.
//!
//! An optional capacity bound turns the cache into a CLOCK (second-chance)
//! eviction structure: lookups mark entries referenced through an atomic
//! flag (no `&mut` required, so shared readers stay cheap), and inserts
//! past capacity sweep the clock hand for an unreferenced victim. The
//! unbounded configuration — the batch layer's — never evicts and preserves
//! strict insertion order, keeping pre-extraction behavior bit-identical.

use crate::decision::{Interpretation, RegionFingerprint};
use openapi_api::RegionId;
use openapi_linalg::kernel::{default_backend, Backend, RowGroup, RowMatrix};
use openapi_linalg::Vector;
use openapi_sync::atomic::{AtomicBool, Ordering};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Rows evaluated per kernel pass of the membership scan. Sized so a
/// chunk of `d = 196` boundaries (~200 KB) stays resident in L2 while a
/// probe batch re-walks it, while still amortizing the per-pass setup.
const CHUNK_ROWS: usize = 128;

/// Configuration of a [`RegionCache`].
#[derive(Debug, Clone)]
pub struct RegionCacheConfig {
    /// Relative tolerance of the membership test (see
    /// [`crate::batch::BatchConfig::membership_rtol`]).
    pub membership_rtol: f64,
    /// Decimal places used to canonicalize recovered core parameters into a
    /// [`RegionFingerprint`].
    pub fingerprint_digits: u32,
    /// Maximum cached regions; `None` (the batch layer's setting) never
    /// evicts. A bound of 0 is clamped to 1.
    pub capacity: Option<usize>,
    /// Kernel backend the blocked membership scan runs on (see
    /// [`openapi_linalg::kernel`]). Backends are bit-identical by
    /// contract; the default is the blocked implementation.
    pub backend: Arc<dyn Backend>,
}

impl Default for RegionCacheConfig {
    fn default() -> Self {
        RegionCacheConfig {
            membership_rtol: crate::openapi::OpenApiConfig::default().rtol,
            fingerprint_digits: 6,
            capacity: None,
            backend: default_backend(),
        }
    }
}

/// A served cache entry: the canonical interpretation of one region.
///
/// The interpretation is shared, not owned: a hit clones an [`Arc`] (one
/// reference-count bump), never the multi-KB parameter payload — at
/// `d = 196` a deep clone used to cost several KB of allocation per hit,
/// which is exactly the traffic a hot cache serves most.
#[derive(Debug, Clone)]
pub struct CachedRegion {
    /// Canonical key of the region.
    pub fingerprint: RegionFingerprint,
    /// The interpretation every member instance of the region shares.
    pub interpretation: Arc<Interpretation>,
}

/// A borrowed probe for [`RegionCache::lookup_probe_batch`]: one instance,
/// its observed prediction, and the explained class.
#[derive(Debug, Clone, Copy)]
pub struct ProbeRef<'a> {
    /// The probed instance.
    pub x: &'a Vector,
    /// The model's predicted probability vector at `x`.
    pub probs: &'a [f64],
    /// The class whose regions are scanned.
    pub class: usize,
}

/// Where a slot's boundary rows live inside the packed blocks.
#[derive(Debug, Clone, Copy)]
struct BlockRef {
    class: usize,
    dim: usize,
    group: usize,
}

/// One cached region plus its CLOCK reference flag.
#[derive(Debug)]
struct Slot {
    fingerprint: RegionFingerprint,
    interpretation: Arc<Interpretation>,
    /// Second-chance bit: set by lookups (under `&self`), cleared by the
    /// sweeping clock hand. Relaxed ordering suffices — the flag is a usage
    /// hint, not a synchronization point.
    referenced: AtomicBool,
    /// The slot's group in its `(class, dim)` block, when it has one
    /// (entries with no contrasts or ragged dimensions explain no probe
    /// and are not packed).
    block: Option<BlockRef>,
}

/// One region's contiguous run of rows inside a [`ClassBlock`].
#[derive(Debug, Clone, Copy)]
struct Group {
    /// First row of the group in the block's pack.
    start: usize,
    /// Rows (pairwise contrasts) in the group.
    len: usize,
    /// The `entries` index served when the group's verdict passes.
    slot: usize,
}

/// The packed boundary rows of every cached region of one `(class, dim)`
/// pair: `w` holds the contrast weight rows back to back, `bias` and
/// `c_prime` are parallel per-row arrays, and `groups` partitions the rows
/// by region in scan order.
#[derive(Debug)]
struct ClassBlock {
    w: RowMatrix,
    bias: Vec<f64>,
    c_prime: Vec<usize>,
    groups: Vec<Group>,
}

impl ClassBlock {
    fn new(dim: usize) -> Self {
        ClassBlock {
            w: RowMatrix::new(dim),
            bias: Vec::new(),
            c_prime: Vec::new(),
            groups: Vec::new(),
        }
    }
}

/// Reusable per-thread buffers of the kernel passes, so `lookup_probe`
/// stays `&self` and allocation-free on the warm path.
#[derive(Debug, Default)]
struct Scratch {
    ln_probs: Vec<f64>,
    y: Vec<f64>,
    targets: Vec<f64>,
    groups: Vec<RowGroup>,
    verdicts: Vec<bool>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Memoizes `ln(max(p, MIN_POSITIVE))` per class — the scan recombines
/// these by subtraction, bit-identical to
/// [`openapi_api::probability::log_ratio`] but costing one `ln` per class
/// instead of one per cached region.
fn fill_ln(out: &mut Vec<f64>, probs: &[f64]) {
    out.clear();
    out.extend(probs.iter().map(|&p| p.max(f64::MIN_POSITIVE).ln()));
}

/// The region cache (see the module docs).
#[derive(Debug, Default)]
pub struct RegionCache {
    config: RegionCacheConfig,
    /// Cached regions in insertion order (until eviction reorders via
    /// `swap_remove`).
    entries: Vec<Slot>,
    /// Packed boundary rows per `(class, dim)`; the membership scan walks
    /// these, in group (registration) order.
    blocks: HashMap<(usize, usize), ClassBlock>,
    /// `(class, fingerprint) → entries index` — merges duplicate solves.
    by_fingerprint: HashMap<(usize, RegionFingerprint), usize>,
    /// `(class, oracle region id) → entries index` — oracle fast path only.
    by_region_id: HashMap<(usize, RegionId), usize>,
    /// CLOCK hand: next eviction candidate.
    hand: usize,
    evictions: u64,
}

impl RegionCache {
    /// Creates a cache with the given configuration.
    pub fn new(config: RegionCacheConfig) -> Self {
        RegionCache {
            config,
            ..RegionCache::default()
        }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &RegionCacheConfig {
        &self.config
    }

    /// Number of distinct regions currently cached (all classes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no regions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries cached for one class.
    pub fn class_len(&self, class: usize) -> usize {
        self.entries
            .iter()
            .filter(|e| e.interpretation.class == class)
            .count()
    }

    /// Regions evicted over the cache's lifetime (0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every cached region (the eviction count is kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.blocks.clear();
        self.by_fingerprint.clear();
        self.by_region_id.clear();
        self.hand = 0;
    }

    /// Iterates the cached regions (for snapshots); order is the current
    /// scan order. Entries are `Arc` clones — no parameter payload is
    /// copied.
    pub fn iter(&self) -> impl Iterator<Item = CachedRegion> + '_ {
        self.entries.iter().map(|e| CachedRegion {
            fingerprint: e.fingerprint,
            interpretation: Arc::clone(&e.interpretation),
        })
    }

    /// Black-box membership lookup: the first cached region of `class`
    /// whose core parameters explain the prediction `probs` observed at
    /// `x` (Theorem 2 — see [`Interpretation::explains_probe`]), found by
    /// one blocked kernel pass per `CHUNK_ROWS` packed boundaries
    /// instead of a per-entry scan.
    pub fn lookup_probe(&self, x: &Vector, probs: &[f64], class: usize) -> Option<CachedRegion> {
        self.lookup_probe_from(x, probs, class, 0)
    }

    /// [`RegionCache::lookup_probe`] restricted to region groups admitted
    /// at or after the watermark `from_group` (see
    /// [`RegionCache::group_watermark`]). The batch layer uses this delta
    /// scan to re-check only the regions solved *during* a batch after a
    /// full pass over the pre-batch cache already missed.
    ///
    /// Watermarks stay valid only while the cache does not evict — delta
    /// scans are for unbounded configurations (the batch layer's).
    pub fn lookup_probe_from(
        &self,
        x: &Vector,
        probs: &[f64],
        class: usize,
        from_group: usize,
    ) -> Option<CachedRegion> {
        if x.is_empty() {
            // Zero-dimensional probes cannot be packed (a RowMatrix has at
            // least one column); fall back to the reference entry scan.
            let rtol = self.config.membership_rtol;
            return self
                .entries
                .iter()
                .filter(|e| e.interpretation.class == class)
                .find(|e| e.interpretation.explains_probe(x, probs, rtol))
                .map(|e| {
                    // ordering: Relaxed — a CLOCK reference bit, read and
                    // cleared only by `evict_one`, which runs under the
                    // owner's exclusive borrow; no data is published.
                    e.referenced.store(true, Ordering::Relaxed);
                    CachedRegion {
                        fingerprint: e.fingerprint,
                        interpretation: Arc::clone(&e.interpretation),
                    }
                });
        }
        let block = self.blocks.get(&(class, x.len()))?;
        SCRATCH
            .with(|scratch| {
                let s = &mut *scratch.borrow_mut();
                fill_ln(&mut s.ln_probs, probs);
                self.scan_block(block, x.as_slice(), class, from_group, s)
            })
            .map(|slot| self.serve(slot))
    }

    /// The number of region groups currently packed for `(class, dim)` —
    /// a watermark for [`RegionCache::lookup_probe_from`] delta scans.
    pub fn group_watermark(&self, class: usize, dim: usize) -> usize {
        self.blocks.get(&(class, dim)).map_or(0, |b| b.groups.len())
    }

    /// Batched black-box lookup: resolves every probe whose `results` slot
    /// is `None`, writing hits in place (slots already `Some` are skipped,
    /// so callers can pre-resolve). Verdict-equivalent to calling
    /// [`RegionCache::lookup_probe`] per probe, but iterates chunk-outer /
    /// probe-inner so a whole batch walks each packed chunk while it is
    /// hot in cache — the warm path of a wire batch costs one blocked pass
    /// over the class's boundaries, not N sequential scans.
    ///
    /// # Panics
    /// When `probes.len() != results.len()`.
    pub fn lookup_probe_batch(
        &self,
        probes: &[ProbeRef<'_>],
        results: &mut [Option<CachedRegion>],
    ) {
        assert_eq!(probes.len(), results.len(), "probes/results must align");
        let mut by_key: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for (i, p) in probes.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            if p.x.is_empty() {
                results[i] = self.lookup_probe(p.x, p.probs, p.class);
            } else {
                by_key.entry((p.class, p.x.len())).or_default().push(i);
            }
        }
        for ((class, dim), idxs) in by_key {
            let Some(block) = self.blocks.get(&(class, dim)) else {
                continue;
            };
            // Per-probe ln memo, computed once for the whole scan.
            let memos: Vec<Vec<f64>> = idxs
                .iter()
                .map(|&i| {
                    let mut ln = Vec::new();
                    fill_ln(&mut ln, probes[i].probs);
                    ln
                })
                .collect();
            let mut unresolved: Vec<usize> = (0..idxs.len()).collect();
            let mut g = 0;
            while g < block.groups.len() && !unresolved.is_empty() {
                let (g_end, row0, row_end) = chunk_bounds(block, g);
                SCRATCH.with(|scratch| {
                    let s = &mut *scratch.borrow_mut();
                    s.groups.clear();
                    for grp in &block.groups[g..g_end] {
                        s.groups.push(RowGroup {
                            start: grp.start - row0,
                            len: grp.len,
                        });
                    }
                    // One multi-probe kernel pass evaluates the chunk for
                    // every still-unresolved probe (probe-major output),
                    // then the per-probe verdict halves run off the shared
                    // evaluation. Bit-identical to per-probe scans by the
                    // `boundary_eval_batch` contract.
                    let xs: Vec<&[f64]> = unresolved
                        .iter()
                        .map(|&u| probes[idxs[u]].x.as_slice())
                        .collect();
                    let backend = &*self.config.backend;
                    let mut y = std::mem::take(&mut s.y);
                    backend.boundary_eval_batch(&block.w, &block.bias, &xs, row0..row_end, &mut y);
                    let n = row_end - row0;
                    // One multi-probe kernel pass; payload = total row
                    // evaluations (rows × still-unresolved probes).
                    openapi_trace::emit(openapi_trace::Stage::KernelPass, (n * xs.len()) as u64);
                    let mut p = 0;
                    unresolved.retain(|&u| {
                        let yp = &y[p * n..(p + 1) * n];
                        p += 1;
                        match self.verdict_scan(block, yp, class, &memos[u], (g, row0, row_end), s)
                        {
                            Some(slot) => {
                                results[idxs[u]] = Some(self.serve(slot));
                                false
                            }
                            None => true,
                        }
                    });
                    s.y = y;
                });
                g = g_end;
            }
        }
    }

    /// Scans one block from group `from_group` on, chunk by chunk,
    /// returning the first slot whose group verdict passes.
    fn scan_block(
        &self,
        block: &ClassBlock,
        x: &[f64],
        class: usize,
        from_group: usize,
        s: &mut Scratch,
    ) -> Option<usize> {
        let mut g = from_group;
        while g < block.groups.len() {
            let (g_end, row0, row_end) = chunk_bounds(block, g);
            s.groups.clear();
            for grp in &block.groups[g..g_end] {
                s.groups.push(RowGroup {
                    start: grp.start - row0,
                    len: grp.len,
                });
            }
            // The ln memo doubles as the target source; take it out to
            // satisfy the borrow checker, then restore.
            let ln_probs = std::mem::take(&mut s.ln_probs);
            let hit = self.scan_chunk(block, x, class, &ln_probs, (g, row0, row_end), s);
            s.ln_probs = ln_probs;
            // One blocked kernel pass done; payload = boundary rows
            // evaluated. Attributes to the calling request's span (if the
            // serving tier set one on this thread).
            openapi_trace::emit(openapi_trace::Stage::KernelPass, (row_end - row0) as u64);
            if hit.is_some() {
                return hit;
            }
            g = g_end;
        }
        None
    }

    /// One kernel pass over the chunk `[row0, row_end)` whose groups start
    /// at index `g` (with `s.groups` pre-filled relative to `row0`):
    /// boundary evaluation, target reconstruction from the ln memo, and
    /// per-group verdicts. Returns the slot of the first passing group.
    fn scan_chunk(
        &self,
        block: &ClassBlock,
        x: &[f64],
        class: usize,
        ln_probs: &[f64],
        (g, row0, row_end): (usize, usize, usize),
        s: &mut Scratch,
    ) -> Option<usize> {
        let backend = &*self.config.backend;
        backend.boundary_eval(&block.w, &block.bias, x, row0..row_end, &mut s.y);
        let y = std::mem::take(&mut s.y);
        let hit = self.verdict_scan(block, &y, class, ln_probs, (g, row0, row_end), s);
        s.y = y;
        hit
    }

    /// The verdict half of a chunk scan: given one probe's already
    /// evaluated boundary values `y` for `[row0, row_end)`, reconstructs
    /// the probe's targets from its ln memo and returns the slot of the
    /// first passing group. Split from [`RegionCache::scan_chunk`] so the
    /// batched lookup can share a single multi-probe evaluation.
    fn verdict_scan(
        &self,
        block: &ClassBlock,
        y: &[f64],
        class: usize,
        ln_probs: &[f64],
        (g, row0, row_end): (usize, usize, usize),
        s: &mut Scratch,
    ) -> Option<usize> {
        let backend = &*self.config.backend;
        let class_ln = ln_probs.get(class).copied();
        s.targets.clear();
        s.targets
            .extend(block.c_prime[row0..row_end].iter().map(|&cp| {
                match (class_ln, ln_probs.get(cp)) {
                    // Identical recombination to `log_ratio(probs, class, cp)`.
                    (Some(lc), Some(&lcp)) => lc - lcp,
                    // Out-of-range class/contrast can never be explained:
                    // NaN fails every comparison, exactly like the scalar
                    // path's early `false`.
                    _ => f64::NAN,
                }
            }));
        backend.membership_verdicts(
            y,
            &s.targets,
            self.config.membership_rtol,
            &s.groups,
            &mut s.verdicts,
        );
        s.verdicts
            .iter()
            .position(|&v| v)
            .map(|hit| block.groups[g + hit].slot)
    }

    /// Marks a slot referenced and serves it.
    fn serve(&self, slot: usize) -> CachedRegion {
        let e = &self.entries[slot];
        // ordering: Relaxed — CLOCK reference bit (see `lookup_probe`).
        e.referenced.store(true, Ordering::Relaxed);
        CachedRegion {
            fingerprint: e.fingerprint,
            interpretation: Arc::clone(&e.interpretation),
        }
    }

    /// Oracle fast-path lookup keyed on [`RegionId`].
    pub fn lookup_region(&self, class: usize, region: &RegionId) -> Option<CachedRegion> {
        let &index = self.by_region_id.get(&(class, region.clone()))?;
        Some(self.serve(index))
    }

    /// Admits a freshly solved region, merging with an existing entry when
    /// the canonical fingerprint already exists AND the recovered parameters
    /// actually agree (so equal-region solves stay bit-identical, while a
    /// fingerprint collision between genuinely different regions —
    /// quantization landing both in one grid cell, or a 64-bit hash
    /// collision — falls back to a separate entry instead of silently
    /// serving the wrong region's parameters). Returns the entry that ends
    /// up cached, which is what every caller must serve.
    ///
    /// Takes the interpretation as an [`Arc`] so an entry recovered from a
    /// durable store (or another cache tier) is admitted without copying
    /// its parameters; freshly solved regions wrap once at the call site.
    pub fn insert(
        &mut self,
        interpretation: Arc<Interpretation>,
        region: Option<RegionId>,
    ) -> CachedRegion {
        let class = interpretation.class;
        let fingerprint = interpretation.fingerprint(self.config.fingerprint_digits);
        let tol = self.config.membership_rtol;
        let index = match self.by_fingerprint.get(&(class, fingerprint)) {
            Some(&i)
                if interpretations_agree(&self.entries[i].interpretation, &interpretation, tol) =>
            {
                i
            }
            Some(_) => {
                // Collision: cache the new region un-indexed (the membership
                // scan still serves it; only the fingerprint shortcut is
                // unavailable for it).
                self.push_slot(fingerprint, interpretation)
            }
            None => {
                let i = self.push_slot(fingerprint, interpretation);
                self.by_fingerprint.insert((class, fingerprint), i);
                i
            }
        };
        if let Some(region) = region {
            self.by_region_id.insert((class, region), index);
        }
        let entry = &self.entries[index];
        CachedRegion {
            fingerprint: entry.fingerprint,
            interpretation: Arc::clone(&entry.interpretation),
        }
    }

    /// Pushes a new slot, evicting first when at capacity, and packs its
    /// boundary rows into the `(class, dim)` block. The fresh entry starts
    /// referenced so it survives at least one full clock sweep.
    fn push_slot(
        &mut self,
        fingerprint: RegionFingerprint,
        interpretation: Arc<Interpretation>,
    ) -> usize {
        if let Some(capacity) = self.config.capacity {
            let capacity = capacity.max(1);
            while self.entries.len() >= capacity {
                self.evict_one();
            }
        }
        self.entries.push(Slot {
            fingerprint,
            interpretation,
            referenced: AtomicBool::new(true),
            block: None,
        });
        let index = self.entries.len() - 1;
        self.register_slot(index);
        index
    }

    /// Packs `entries[index]`'s boundary rows into its class block. Slots
    /// whose contrasts are absent or dimensionally ragged explain no probe
    /// (the scalar semantics' dot product fails) and stay unpacked.
    fn register_slot(&mut self, index: usize) {
        let interp = &self.entries[index].interpretation;
        let Some(first) = interp.pairwise.first() else {
            return;
        };
        let dim = first.weights.len();
        if dim == 0 || interp.pairwise.iter().any(|p| p.weights.len() != dim) {
            return;
        }
        let class = interp.class;
        let block = self
            .blocks
            .entry((class, dim))
            .or_insert_with(|| ClassBlock::new(dim));
        let start = block.w.rows();
        for p in &interp.pairwise {
            block.w.push_row(p.weights.as_slice());
            block.bias.push(p.bias);
            block.c_prime.push(p.c_prime);
        }
        let group = block.groups.len();
        block.groups.push(Group {
            start,
            len: interp.pairwise.len(),
            slot: index,
        });
        self.entries[index].block = Some(BlockRef { class, dim, group });
    }

    /// Unpacks a slot's rows from its block: the row range is drained
    /// (later rows shift down, preserving scan order), later groups'
    /// offsets and their slots' back-references are repaired, and an
    /// emptied block is dropped.
    fn unregister_slot(&mut self, bref: BlockRef) {
        let block = self
            .blocks
            .get_mut(&(bref.class, bref.dim))
            .expect("slot block ref points at a live block");
        let g = block.groups[bref.group];
        block.w.remove_rows(g.start..g.start + g.len);
        block.bias.drain(g.start..g.start + g.len);
        block.c_prime.drain(g.start..g.start + g.len);
        block.groups.remove(bref.group);
        for grp in &mut block.groups[bref.group..] {
            grp.start -= g.len;
            let back = self.entries[grp.slot]
                .block
                .as_mut()
                .expect("packed slot keeps its block ref");
            back.group -= 1;
        }
        if block.groups.is_empty() {
            self.blocks.remove(&(bref.class, bref.dim));
        }
    }

    /// CLOCK sweep: clears reference bits until an unreferenced victim is
    /// found, then removes it. Terminates within two passes — the first
    /// sweep clears every bit it crosses.
    fn evict_one(&mut self) {
        debug_assert!(!self.entries.is_empty());
        loop {
            if self.hand >= self.entries.len() {
                self.hand = 0;
            }
            let referenced = &self.entries[self.hand].referenced;
            // ordering: Relaxed — the bit only steers eviction; `&mut
            // self` already excludes concurrent markers.
            if referenced.swap(false, Ordering::Relaxed) {
                self.hand += 1;
            } else {
                let victim = self.hand;
                self.remove_slot(victim);
                self.evictions += 1;
                return;
            }
        }
    }

    /// Drops every cached entry of `class` keyed by `fingerprint` —
    /// collision-fallback entries included, which is why this scans
    /// instead of consulting `by_fingerprint` alone. The drift detector's
    /// cache half: a region the hidden model no longer explains is removed
    /// here (and tombstoned in the durable store by the serving tier).
    /// Returns the number of entries removed; removals do not count as
    /// capacity evictions.
    pub fn evict_fingerprint(&mut self, class: usize, fingerprint: RegionFingerprint) -> usize {
        let mut removed = 0;
        while let Some(index) = self
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint && e.interpretation.class == class)
        {
            self.remove_slot(index);
            removed += 1;
        }
        removed
    }

    /// Removes the slot at `index` via `swap_remove`, repairing both index
    /// maps (entries pointing at the victim vanish, entries pointing at the
    /// moved last slot are redirected) and the packed blocks (the victim's
    /// rows are unpacked; the moved slot's group follows it).
    fn remove_slot(&mut self, index: usize) {
        if let Some(bref) = self.entries[index].block {
            self.unregister_slot(bref);
        }
        let last = self.entries.len() - 1;
        self.entries.swap_remove(index);
        if index < self.entries.len() {
            if let Some(bref) = self.entries[index].block {
                self.blocks
                    .get_mut(&(bref.class, bref.dim))
                    .expect("moved slot's block ref points at a live block")
                    .groups[bref.group]
                    .slot = index;
            }
        }
        self.by_fingerprint.retain(|_, v| {
            if *v == index {
                return false;
            }
            if *v == last {
                *v = index;
            }
            true
        });
        self.by_region_id.retain(|_, v| {
            if *v == index {
                return false;
            }
            if *v == last {
                *v = index;
            }
            true
        });
    }
}

/// The chunk of whole groups starting at group `g`: extends until at
/// least [`CHUNK_ROWS`] rows are covered (groups are never split, so a
/// region's verdict is always decided within one pass). Returns
/// `(end_group, first_row, end_row)`.
fn chunk_bounds(block: &ClassBlock, g: usize) -> (usize, usize, usize) {
    let row0 = block.groups[g].start;
    let mut g_end = g;
    let mut row_end = row0;
    while g_end < block.groups.len() && row_end - row0 < CHUNK_ROWS {
        row_end += block.groups[g_end].len;
        g_end += 1;
    }
    (g_end, row0, row_end)
}

/// Whether two interpretations recovered the same region's parameters, up
/// to solver round-off: same class, same contrast order, and every weight
/// and bias within `tol` (relative). Used to distinguish "same region,
/// independently re-solved" (merge) from a fingerprint collision (keep
/// both). Public so other region-keyed tiers (the durable store in
/// `openapi-store`) apply the identical merge criterion.
pub fn interpretations_agree(a: &Interpretation, b: &Interpretation, tol: f64) -> bool {
    a.class == b.class
        && a.pairwise.len() == b.pairwise.len()
        && a.pairwise.iter().zip(&b.pairwise).all(|(p, q)| {
            p.c_prime == q.c_prime
                && (p.bias - q.bias).abs() <= tol * p.bias.abs().max(1.0)
                && p.weights.len() == q.weights.len()
                && p.weights
                    .iter()
                    .zip(q.weights.iter())
                    .all(|(x, y)| (x - y).abs() <= tol * x.abs().max(1.0))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::PairwiseCoreParams;

    /// A synthetic one-contrast interpretation whose single weight encodes
    /// a distinct region identity.
    fn interp(class: usize, w: f64) -> Arc<Interpretation> {
        Arc::new(
            Interpretation::from_pairwise(
                class,
                vec![PairwiseCoreParams {
                    c_prime: class + 1,
                    weights: Vector(vec![w]),
                    bias: 0.0,
                }],
            )
            .unwrap(),
        )
    }

    /// A probe consistent with `interp(class, w)` at `x` (two-class
    /// sigmoid whose log-ratio matches `w·x`).
    fn consistent_probs(i: &Interpretation, x: &Vector) -> Vec<f64> {
        let p = &i.pairwise[0];
        let target = p.weights.dot(x).unwrap() + p.bias;
        let r = target.exp();
        let denom = 1.0 + r;
        let mut probs = vec![0.0; p.c_prime + 1];
        probs[i.class] = r / denom;
        probs[p.c_prime] = 1.0 / denom;
        probs
    }

    fn bounded(capacity: usize) -> RegionCache {
        RegionCache::new(RegionCacheConfig {
            capacity: Some(capacity),
            ..RegionCacheConfig::default()
        })
    }

    #[test]
    fn unbounded_cache_never_evicts_and_preserves_order() {
        let mut cache = RegionCache::default();
        for i in 0..100 {
            cache.insert(interp(0, i as f64), None);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.evictions(), 0);
        let firsts: Vec<f64> = cache
            .iter()
            .map(|r| r.interpretation.pairwise[0].weights[0])
            .collect();
        assert_eq!(firsts, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_bound_is_enforced_by_clock_eviction() {
        let mut cache = bounded(4);
        for i in 0..20 {
            cache.insert(interp(0, i as f64), Some(RegionId::from_index(i)));
            assert!(cache.len() <= 4, "capacity bound violated at insert {i}");
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 16);
    }

    #[test]
    fn recently_looked_up_entries_survive_the_sweep() {
        let mut cache = bounded(3);
        for i in 0..3 {
            cache.insert(interp(0, i as f64), Some(RegionId::from_index(i)));
        }
        // Sweep once so every slot's initial reference bit is cleared.
        cache.insert(interp(0, 100.0), Some(RegionId::from_index(100)));
        // Touch region 100; the next insert must evict something else.
        assert!(cache.lookup_region(0, &RegionId::from_index(100)).is_some());
        cache.insert(interp(0, 101.0), Some(RegionId::from_index(101)));
        assert!(
            cache.lookup_region(0, &RegionId::from_index(100)).is_some(),
            "referenced entry must get a second chance"
        );
    }

    #[test]
    fn eviction_repairs_the_index_maps() {
        let mut cache = bounded(2);
        cache.insert(interp(0, 1.0), Some(RegionId::from_index(1)));
        cache.insert(interp(0, 2.0), Some(RegionId::from_index(2)));
        // Force evictions and verify every surviving oracle key still
        // resolves to the entry carrying its own parameters.
        for i in 3..40 {
            cache.insert(interp(0, i as f64), Some(RegionId::from_index(i)));
            for j in 1..=i {
                if let Some(hit) = cache.lookup_region(0, &RegionId::from_index(j)) {
                    assert_eq!(
                        hit.interpretation.pairwise[0].weights[0], j as f64,
                        "oracle key {j} resolved to the wrong entry"
                    );
                }
            }
        }
    }

    #[test]
    fn eviction_keeps_the_packed_scan_serving_the_right_regions() {
        let mut cache = bounded(8);
        let x = Vector(vec![0.4]);
        for i in 0..50 {
            cache.insert(interp(0, i as f64 + 0.5), None);
            // Every probe that hits must return exactly its own region —
            // the packed blocks track every eviction and swap.
            for j in 0..=i {
                let target = interp(0, j as f64 + 0.5);
                let probs = consistent_probs(&target, &x);
                if let Some(hit) = cache.lookup_probe(&x, &probs, 0) {
                    assert_eq!(hit.interpretation, target, "probe {j} after insert {i}");
                }
            }
        }
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn evict_fingerprint_forgets_exactly_the_named_region() {
        let mut cache = RegionCache::default();
        let x = Vector(vec![0.4]);
        let victim = interp(0, 3.0);
        let fingerprint = victim.fingerprint(6);
        for i in 0..8 {
            cache.insert(interp(0, i as f64), Some(RegionId::from_index(i)));
        }
        assert_eq!(cache.evict_fingerprint(0, fingerprint), 1);
        assert_eq!(cache.len(), 7);
        // Invalidation is not a capacity eviction.
        assert_eq!(cache.evictions(), 0);
        // The victim no longer serves; every survivor still serves its own
        // exact parameters through the repaired packed blocks and maps.
        let probs = consistent_probs(&victim, &x);
        assert!(cache.lookup_probe(&x, &probs, 0).is_none());
        assert!(cache.lookup_region(0, &RegionId::from_index(3)).is_none());
        for j in (0..8).filter(|&j| j != 3) {
            let target = interp(0, j as f64);
            let probs = consistent_probs(&target, &x);
            let hit = cache.lookup_probe(&x, &probs, 0).expect("survivor serves");
            assert_eq!(hit.interpretation, target);
        }
        // Idempotent: the region is already gone.
        assert_eq!(cache.evict_fingerprint(0, fingerprint), 0);
        // Class-scoped: another class's entry under the same fingerprint
        // value is untouched.
        cache.insert(interp(1, 3.0), None);
        let other = interp(1, 3.0).fingerprint(6);
        assert_eq!(cache.evict_fingerprint(0, other), 0);
    }

    #[test]
    fn probe_lookup_hits_through_the_packed_scan() {
        let mut cache = RegionCache::default();
        let x = Vector(vec![-0.3]);
        for i in 0..30 {
            cache.insert(interp(0, i as f64 + 0.25), None);
        }
        let target = interp(0, 17.25);
        let probs = consistent_probs(&target, &x);
        let hit = cache.lookup_probe(&x, &probs, 0).expect("region cached");
        assert_eq!(hit.interpretation, target);
        // A probe nothing explains, and a class with no block, both miss.
        assert!(cache.lookup_probe(&x, &[0.4, 0.6], 0).is_none());
        assert!(cache.lookup_probe(&x, &probs, 5).is_none());
    }

    #[test]
    fn batched_lookup_matches_per_probe_lookup() {
        let mut cache = RegionCache::default();
        let xs: Vec<Vector> = (0..6).map(|i| Vector(vec![0.1 * i as f64 - 0.2])).collect();
        for i in 0..200 {
            cache.insert(interp(0, i as f64 + 0.5), None);
        }
        let targets: Vec<_> = [3usize, 60, 199, 123, 0, 77]
            .iter()
            .map(|&i| interp(0, i as f64 + 0.5))
            .collect();
        let probs: Vec<Vec<f64>> = targets
            .iter()
            .zip(&xs)
            .map(|(t, x)| consistent_probs(t, x))
            .collect();
        let probes: Vec<ProbeRef> = xs
            .iter()
            .zip(&probs)
            .map(|(x, p)| ProbeRef {
                x,
                probs: p,
                class: 0,
            })
            .collect();
        let mut results = vec![None; probes.len()];
        // Pre-resolved slots must be left alone.
        results[4] = cache.lookup_probe(&xs[4], &probs[4], 0);
        cache.lookup_probe_batch(&probes, &mut results);
        for (i, r) in results.iter().enumerate() {
            let single = cache.lookup_probe(&xs[i], &probs[i], 0).unwrap();
            let batched = r.as_ref().expect("batched lookup must hit");
            assert_eq!(batched.interpretation, single.interpretation, "probe {i}");
        }
    }

    #[test]
    fn delta_scans_see_only_groups_past_the_watermark() {
        let mut cache = RegionCache::default();
        let x = Vector(vec![0.9]);
        cache.insert(interp(0, 1.0), None);
        let watermark = cache.group_watermark(0, 1);
        assert_eq!(watermark, 1);
        let old = interp(0, 1.0);
        let old_probs = consistent_probs(&old, &x);
        // The pre-watermark region is invisible to a delta scan...
        assert!(cache
            .lookup_probe_from(&x, &old_probs, 0, watermark)
            .is_none());
        // ...while a region admitted after the watermark is found.
        let fresh = interp(0, 2.0);
        cache.insert(Arc::clone(&fresh), None);
        let fresh_probs = consistent_probs(&fresh, &x);
        let hit = cache
            .lookup_probe_from(&x, &fresh_probs, 0, watermark)
            .expect("fresh region visible to the delta scan");
        assert_eq!(hit.interpretation, fresh);
    }

    #[test]
    fn duplicate_solves_merge_to_the_first_entry() {
        let mut cache = RegionCache::default();
        let a = cache.insert(interp(0, 5.0), None);
        let b = cache.insert(interp(0, 5.0), None);
        assert_eq!(cache.len(), 1);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.interpretation, b.interpretation);
        // The merge left exactly one packed group behind.
        assert_eq!(cache.group_watermark(0, 1), 1);
    }

    #[test]
    fn classes_are_disjoint() {
        let mut cache = RegionCache::default();
        cache.insert(interp(0, 1.0), None);
        cache.insert(interp(1, 1.0), None);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.class_len(0), 1);
        assert_eq!(cache.class_len(1), 1);
    }

    #[test]
    fn clear_empties_but_keeps_eviction_count() {
        let mut cache = bounded(2);
        for i in 0..5 {
            cache.insert(interp(0, i as f64), None);
        }
        let evicted = cache.evictions();
        assert!(evicted > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), evicted);
        assert_eq!(cache.group_watermark(0, 1), 0);
        assert!(cache.lookup_region(0, &RegionId::from_index(0)).is_none());
    }
}
