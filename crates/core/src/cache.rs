//! The region cache: Theorem 2 turned into a lookup structure.
//!
//! Every instance of a locally linear region recovers the **identical**
//! core parameters (Theorem 2), so interpretation results are cacheable per
//! *region*, not per instance. [`RegionCache`] owns the membership-probe
//! lookup, the canonical-fingerprint merge, and the collision fallback that
//! [`crate::batch::BatchInterpreter`] introduced — extracted here so the
//! single-threaded batch layer and the sharded concurrent cache in
//! `openapi-serve` share exactly one membership code path.
//!
//! Two lookup modes, both sound by Theorem 2:
//!
//! * [`RegionCache::lookup_probe`] — black-box: a cached region's parameters
//!   either explain the probed prediction at every contrast
//!   ([`Interpretation::explains_probe`]), in which case the probe lies in
//!   that region and the cached interpretation is *its* interpretation, or
//!   they don't and the scan moves on.
//! * [`RegionCache::lookup_region`] — white-box oracle fast path keyed on
//!   [`RegionId`], for evaluation and tests (zero queries per hit).
//!
//! An optional capacity bound turns the cache into a CLOCK (second-chance)
//! eviction structure: lookups mark entries referenced through an atomic
//! flag (no `&mut` required, so shared readers stay cheap), and inserts
//! past capacity sweep the clock hand for an unreferenced victim. The
//! unbounded configuration — the batch layer's — never evicts and preserves
//! strict insertion order, keeping pre-extraction behavior bit-identical.

use crate::decision::{Interpretation, RegionFingerprint};
use openapi_api::RegionId;
use openapi_linalg::Vector;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Configuration of a [`RegionCache`].
#[derive(Debug, Clone)]
pub struct RegionCacheConfig {
    /// Relative tolerance of the membership test (see
    /// [`crate::batch::BatchConfig::membership_rtol`]).
    pub membership_rtol: f64,
    /// Decimal places used to canonicalize recovered core parameters into a
    /// [`RegionFingerprint`].
    pub fingerprint_digits: u32,
    /// Maximum cached regions; `None` (the batch layer's setting) never
    /// evicts. A bound of 0 is clamped to 1.
    pub capacity: Option<usize>,
}

impl Default for RegionCacheConfig {
    fn default() -> Self {
        RegionCacheConfig {
            membership_rtol: crate::openapi::OpenApiConfig::default().rtol,
            fingerprint_digits: 6,
            capacity: None,
        }
    }
}

/// A served cache entry: the canonical interpretation of one region.
///
/// The interpretation is shared, not owned: a hit clones an [`Arc`] (one
/// reference-count bump), never the multi-KB parameter payload — at
/// `d = 196` a deep clone used to cost several KB of allocation per hit,
/// which is exactly the traffic a hot cache serves most.
#[derive(Debug, Clone)]
pub struct CachedRegion {
    /// Canonical key of the region.
    pub fingerprint: RegionFingerprint,
    /// The interpretation every member instance of the region shares.
    pub interpretation: Arc<Interpretation>,
}

/// One cached region plus its CLOCK reference flag.
#[derive(Debug)]
struct Slot {
    fingerprint: RegionFingerprint,
    interpretation: Arc<Interpretation>,
    /// Second-chance bit: set by lookups (under `&self`), cleared by the
    /// sweeping clock hand. Relaxed ordering suffices — the flag is a usage
    /// hint, not a synchronization point.
    referenced: AtomicBool,
}

/// The region cache (see the module docs).
#[derive(Debug, Default)]
pub struct RegionCache {
    config: RegionCacheConfig,
    /// Cached regions in insertion order (until eviction reorders via
    /// `swap_remove`); membership scans walk this.
    entries: Vec<Slot>,
    /// `(class, fingerprint) → entries index` — merges duplicate solves.
    by_fingerprint: HashMap<(usize, RegionFingerprint), usize>,
    /// `(class, oracle region id) → entries index` — oracle fast path only.
    by_region_id: HashMap<(usize, RegionId), usize>,
    /// CLOCK hand: next eviction candidate.
    hand: usize,
    evictions: u64,
}

impl RegionCache {
    /// Creates a cache with the given configuration.
    pub fn new(config: RegionCacheConfig) -> Self {
        RegionCache {
            config,
            ..RegionCache::default()
        }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &RegionCacheConfig {
        &self.config
    }

    /// Number of distinct regions currently cached (all classes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no regions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries cached for one class.
    pub fn class_len(&self, class: usize) -> usize {
        self.entries
            .iter()
            .filter(|e| e.interpretation.class == class)
            .count()
    }

    /// Regions evicted over the cache's lifetime (0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every cached region (the eviction count is kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_fingerprint.clear();
        self.by_region_id.clear();
        self.hand = 0;
    }

    /// Iterates the cached regions (for snapshots); order is the current
    /// scan order. Entries are `Arc` clones — no parameter payload is
    /// copied.
    pub fn iter(&self) -> impl Iterator<Item = CachedRegion> + '_ {
        self.entries.iter().map(|e| CachedRegion {
            fingerprint: e.fingerprint,
            interpretation: Arc::clone(&e.interpretation),
        })
    }

    /// Black-box membership lookup: the first cached region of `class`
    /// whose core parameters explain the prediction `probs` observed at
    /// `x` (Theorem 2 — see [`Interpretation::explains_probe`]).
    pub fn lookup_probe(&self, x: &Vector, probs: &[f64], class: usize) -> Option<CachedRegion> {
        let rtol = self.config.membership_rtol;
        self.entries
            .iter()
            .filter(|e| e.interpretation.class == class)
            .find(|e| e.interpretation.explains_probe(x, probs, rtol))
            .map(|e| {
                e.referenced.store(true, Ordering::Relaxed);
                CachedRegion {
                    fingerprint: e.fingerprint,
                    interpretation: Arc::clone(&e.interpretation),
                }
            })
    }

    /// Oracle fast-path lookup keyed on [`RegionId`].
    pub fn lookup_region(&self, class: usize, region: &RegionId) -> Option<CachedRegion> {
        let &index = self.by_region_id.get(&(class, region.clone()))?;
        let e = &self.entries[index];
        e.referenced.store(true, Ordering::Relaxed);
        Some(CachedRegion {
            fingerprint: e.fingerprint,
            interpretation: Arc::clone(&e.interpretation),
        })
    }

    /// Admits a freshly solved region, merging with an existing entry when
    /// the canonical fingerprint already exists AND the recovered parameters
    /// actually agree (so equal-region solves stay bit-identical, while a
    /// fingerprint collision between genuinely different regions —
    /// quantization landing both in one grid cell, or a 64-bit hash
    /// collision — falls back to a separate entry instead of silently
    /// serving the wrong region's parameters). Returns the entry that ends
    /// up cached, which is what every caller must serve.
    ///
    /// Takes the interpretation as an [`Arc`] so an entry recovered from a
    /// durable store (or another cache tier) is admitted without copying
    /// its parameters; freshly solved regions wrap once at the call site.
    pub fn insert(
        &mut self,
        interpretation: Arc<Interpretation>,
        region: Option<RegionId>,
    ) -> CachedRegion {
        let class = interpretation.class;
        let fingerprint = interpretation.fingerprint(self.config.fingerprint_digits);
        let tol = self.config.membership_rtol;
        let index = match self.by_fingerprint.get(&(class, fingerprint)) {
            Some(&i)
                if interpretations_agree(&self.entries[i].interpretation, &interpretation, tol) =>
            {
                i
            }
            Some(_) => {
                // Collision: cache the new region un-indexed (the membership
                // scan over `entries` still serves it; only the fingerprint
                // shortcut is unavailable for it).
                self.push_slot(fingerprint, interpretation)
            }
            None => {
                let i = self.push_slot(fingerprint, interpretation);
                self.by_fingerprint.insert((class, fingerprint), i);
                i
            }
        };
        if let Some(region) = region {
            self.by_region_id.insert((class, region), index);
        }
        let entry = &self.entries[index];
        CachedRegion {
            fingerprint: entry.fingerprint,
            interpretation: Arc::clone(&entry.interpretation),
        }
    }

    /// Pushes a new slot, evicting first when at capacity. The fresh entry
    /// starts referenced so it survives at least one full clock sweep.
    fn push_slot(
        &mut self,
        fingerprint: RegionFingerprint,
        interpretation: Arc<Interpretation>,
    ) -> usize {
        if let Some(capacity) = self.config.capacity {
            let capacity = capacity.max(1);
            while self.entries.len() >= capacity {
                self.evict_one();
            }
        }
        self.entries.push(Slot {
            fingerprint,
            interpretation,
            referenced: AtomicBool::new(true),
        });
        self.entries.len() - 1
    }

    /// CLOCK sweep: clears reference bits until an unreferenced victim is
    /// found, then removes it. Terminates within two passes — the first
    /// sweep clears every bit it crosses.
    fn evict_one(&mut self) {
        debug_assert!(!self.entries.is_empty());
        loop {
            if self.hand >= self.entries.len() {
                self.hand = 0;
            }
            if self.entries[self.hand]
                .referenced
                .swap(false, Ordering::Relaxed)
            {
                self.hand += 1;
            } else {
                let victim = self.hand;
                self.remove_slot(victim);
                return;
            }
        }
    }

    /// Removes the slot at `index` via `swap_remove`, repairing both index
    /// maps: entries pointing at the victim vanish, entries pointing at the
    /// moved last slot are redirected.
    fn remove_slot(&mut self, index: usize) {
        let last = self.entries.len() - 1;
        self.entries.swap_remove(index);
        self.evictions += 1;
        self.by_fingerprint.retain(|_, v| {
            if *v == index {
                return false;
            }
            if *v == last {
                *v = index;
            }
            true
        });
        self.by_region_id.retain(|_, v| {
            if *v == index {
                return false;
            }
            if *v == last {
                *v = index;
            }
            true
        });
    }
}

/// Whether two interpretations recovered the same region's parameters, up
/// to solver round-off: same class, same contrast order, and every weight
/// and bias within `tol` (relative). Used to distinguish "same region,
/// independently re-solved" (merge) from a fingerprint collision (keep
/// both). Public so other region-keyed tiers (the durable store in
/// `openapi-store`) apply the identical merge criterion.
pub fn interpretations_agree(a: &Interpretation, b: &Interpretation, tol: f64) -> bool {
    a.class == b.class
        && a.pairwise.len() == b.pairwise.len()
        && a.pairwise.iter().zip(&b.pairwise).all(|(p, q)| {
            p.c_prime == q.c_prime
                && (p.bias - q.bias).abs() <= tol * p.bias.abs().max(1.0)
                && p.weights.len() == q.weights.len()
                && p.weights
                    .iter()
                    .zip(q.weights.iter())
                    .all(|(x, y)| (x - y).abs() <= tol * x.abs().max(1.0))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::PairwiseCoreParams;

    /// A synthetic one-contrast interpretation whose single weight encodes
    /// a distinct region identity.
    fn interp(class: usize, w: f64) -> Arc<Interpretation> {
        Arc::new(
            Interpretation::from_pairwise(
                class,
                vec![PairwiseCoreParams {
                    c_prime: class + 1,
                    weights: Vector(vec![w]),
                    bias: 0.0,
                }],
            )
            .unwrap(),
        )
    }

    fn bounded(capacity: usize) -> RegionCache {
        RegionCache::new(RegionCacheConfig {
            capacity: Some(capacity),
            ..RegionCacheConfig::default()
        })
    }

    #[test]
    fn unbounded_cache_never_evicts_and_preserves_order() {
        let mut cache = RegionCache::default();
        for i in 0..100 {
            cache.insert(interp(0, i as f64), None);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.evictions(), 0);
        let firsts: Vec<f64> = cache
            .iter()
            .map(|r| r.interpretation.pairwise[0].weights[0])
            .collect();
        assert_eq!(firsts, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_bound_is_enforced_by_clock_eviction() {
        let mut cache = bounded(4);
        for i in 0..20 {
            cache.insert(interp(0, i as f64), Some(RegionId::from_index(i)));
            assert!(cache.len() <= 4, "capacity bound violated at insert {i}");
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 16);
    }

    #[test]
    fn recently_looked_up_entries_survive_the_sweep() {
        let mut cache = bounded(3);
        for i in 0..3 {
            cache.insert(interp(0, i as f64), Some(RegionId::from_index(i)));
        }
        // Sweep once so every slot's initial reference bit is cleared.
        cache.insert(interp(0, 100.0), Some(RegionId::from_index(100)));
        // Touch region 100; the next insert must evict something else.
        assert!(cache.lookup_region(0, &RegionId::from_index(100)).is_some());
        cache.insert(interp(0, 101.0), Some(RegionId::from_index(101)));
        assert!(
            cache.lookup_region(0, &RegionId::from_index(100)).is_some(),
            "referenced entry must get a second chance"
        );
    }

    #[test]
    fn eviction_repairs_the_index_maps() {
        let mut cache = bounded(2);
        cache.insert(interp(0, 1.0), Some(RegionId::from_index(1)));
        cache.insert(interp(0, 2.0), Some(RegionId::from_index(2)));
        // Force evictions and verify every surviving oracle key still
        // resolves to the entry carrying its own parameters.
        for i in 3..40 {
            cache.insert(interp(0, i as f64), Some(RegionId::from_index(i)));
            for j in 1..=i {
                if let Some(hit) = cache.lookup_region(0, &RegionId::from_index(j)) {
                    assert_eq!(
                        hit.interpretation.pairwise[0].weights[0], j as f64,
                        "oracle key {j} resolved to the wrong entry"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_solves_merge_to_the_first_entry() {
        let mut cache = RegionCache::default();
        let a = cache.insert(interp(0, 5.0), None);
        let b = cache.insert(interp(0, 5.0), None);
        assert_eq!(cache.len(), 1);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.interpretation, b.interpretation);
    }

    #[test]
    fn classes_are_disjoint() {
        let mut cache = RegionCache::default();
        cache.insert(interp(0, 1.0), None);
        cache.insert(interp(1, 1.0), None);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.class_len(0), 1);
        assert_eq!(cache.class_len(1), 1);
    }

    #[test]
    fn clear_empties_but_keeps_eviction_count() {
        let mut cache = bounded(2);
        for i in 0..5 {
            cache.insert(interp(0, i as f64), None);
        }
        let evicted = cache.evictions();
        assert!(evicted > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), evicted);
        assert!(cache.lookup_region(0, &RegionId::from_index(0)).is_none());
    }
}
