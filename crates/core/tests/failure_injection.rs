//! Failure injection: what happens to each interpreter when the API's
//! contract degrades — quantized probabilities, noisy responses, saturated
//! softmax. The paper's probability-1 guarantees assume exact real-valued
//! outputs; these tests pin down the *designed* behaviour outside that
//! envelope: OpenAPI either refuses loudly (non-deterministic noise) or
//! converges to an honest interpretation of the degraded API itself
//! (deterministic quantization plateaus); the naive method errs silently.

use openapi_api::{GroundTruthOracle, LinearSoftmaxModel, NoisyApi, QuantizedApi};
use openapi_core::{
    InterpretError, NaiveConfig, NaiveInterpreter, OpenApiConfig, OpenApiInterpreter,
};
use openapi_linalg::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model() -> LinearSoftmaxModel {
    let w = Matrix::from_rows(&[
        &[1.0, -0.5, 0.25],
        &[0.0, 2.0, -1.0],
        &[-1.5, 0.5, 0.75],
        &[0.6, -0.2, 0.9],
    ])
    .unwrap();
    LinearSoftmaxModel::new(w, Vector(vec![0.1, -0.2, 0.3]))
}

fn x0() -> Vector {
    Vector(vec![0.3, -0.1, 0.4, 0.2])
}

#[test]
fn openapi_interprets_the_quantization_plateau_exactly() {
    // A deterministic quantized API is itself a PLM — a piecewise-CONSTANT
    // one. Once the hypercube shrinks inside one quantization plateau,
    // every probe returns identical probabilities, the system is perfectly
    // consistent, and its unique solution is the plateau's true local
    // behaviour: zero decision features. OpenAPI thus converges and
    // faithfully reports the API it queried — which is NOT the hidden
    // model. (You interpret the API you can reach; quantization changes
    // what that is. The iteration log records the shrink-to-plateau path.)
    let api = QuantizedApi::new(model(), 3);
    let cfg = OpenApiConfig {
        max_iterations: 20,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let r = OpenApiInterpreter::new(cfg)
        .interpret(&api, &x0(), 0, &mut rng)
        .expect("plateaus are consistent regions");
    // The recovered features describe the plateau (zero slope)…
    assert!(
        r.interpretation.decision_features.norm_linf() < 1e-6,
        "plateau slope must be ~0, got {:?}",
        r.interpretation.decision_features.norm_linf()
    );
    // …which is far from the hidden model's features: the degradation is
    // visible in the answer, not hidden by it.
    let truth = model().local_model(x0().as_slice()).decision_features(0);
    assert!(truth.norm_linf() > 0.5);
    // And the log shows the adaptive descent into the plateau.
    assert!(r.iterations > 1);
}

#[test]
fn openapi_tolerates_fine_quantization_within_loosened_tolerance() {
    // 12-decimal quantization perturbs log-ratios by ~1e-11; with rtol
    // loosened above that, OpenAPI accepts and the recovered features are
    // accurate to the quantization level.
    let api = QuantizedApi::new(model(), 12);
    let cfg = OpenApiConfig {
        rtol: 1e-6,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(2);
    let r = OpenApiInterpreter::new(cfg)
        .interpret(&api, &x0(), 0, &mut rng)
        .expect("fine quantization within tolerance");
    let truth = model().local_model(x0().as_slice()).decision_features(0);
    let err = r
        .interpretation
        .decision_features
        .l1_distance(&truth)
        .unwrap();
    assert!(
        err < 1e-3,
        "error {err} should track the quantization scale"
    );
}

#[test]
fn naive_method_answers_wrongly_on_quantized_api_without_complaint() {
    let api = QuantizedApi::new(model(), 3);
    let naive = NaiveInterpreter::new(NaiveConfig::with_edge(1e-4));
    let mut rng = StdRng::seed_from_u64(3);
    let i = naive
        .interpret(&api, &x0(), 0, &mut rng)
        .expect("the naive method has no failure detection");
    let truth = model().local_model(x0().as_slice()).decision_features(0);
    let err = i.decision_features.l1_distance(&truth).unwrap();
    // At h = 1e-4 the quantization error (~5e-4 on probabilities) dominates
    // the signal — the answer is badly wrong, and nothing warned the user.
    assert!(err > 1.0, "expected a large silent error, got {err}");
}

#[test]
fn openapi_refuses_on_noisy_api() {
    let api = NoisyApi::new(model(), 1e-3, 7);
    let cfg = OpenApiConfig {
        max_iterations: 10,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(4);
    let r = OpenApiInterpreter::new(cfg).interpret(&api, &x0(), 0, &mut rng);
    assert!(matches!(r, Err(InterpretError::BudgetExhausted { .. })));
}

#[test]
fn zero_noise_wrapper_changes_nothing() {
    let api = NoisyApi::new(model(), 0.0, 8);
    let mut rng = StdRng::seed_from_u64(5);
    let r = OpenApiInterpreter::new(OpenApiConfig::default())
        .interpret(&api, &x0(), 0, &mut rng)
        .expect("noiseless wrapper is exact");
    let truth = model().local_model(x0().as_slice()).decision_features(0);
    let err = r
        .interpretation
        .decision_features
        .l1_distance(&truth)
        .unwrap();
    assert!(err < 1e-7);
}

#[test]
fn saturated_softmax_still_interpretable_with_clamped_log_ratios() {
    // Scale the weights so the softmax saturates (probabilities hit 1.0 /
    // ~0.0 in f64). The clamped log-ratio keeps equations finite; OpenAPI
    // either solves consistently or refuses — it must not panic or emit
    // non-finite features.
    let mut w = Matrix::zeros(3, 2);
    w[(0, 0)] = 400.0;
    w[(1, 1)] = 390.0;
    w[(2, 0)] = -100.0;
    let api = LinearSoftmaxModel::new(w, Vector(vec![0.0, 0.0]));
    let x = Vector(vec![1.0, 1.0, 1.0]);
    let mut rng = StdRng::seed_from_u64(6);
    let cfg = OpenApiConfig {
        max_iterations: 10,
        ..Default::default()
    };
    match OpenApiInterpreter::new(cfg).interpret(&api, &x, 0, &mut rng) {
        Ok(r) => assert!(r.interpretation.decision_features.is_finite()),
        Err(InterpretError::BudgetExhausted { .. }) => {} // acceptable: saturation detected
        Err(e) => panic!("unexpected error kind: {e}"),
    }
}

#[test]
fn degraded_apis_do_not_corrupt_ground_truth_passthrough() {
    let api = QuantizedApi::new(model(), 2);
    // The oracle below the wrapper still reports the exact model — the
    // evaluation side never degrades, only the API surface.
    let lm = api.local_model(x0().as_slice());
    assert_eq!(&lm, model().local());
}
