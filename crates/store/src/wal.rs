//! The append-only write-ahead log.
//!
//! Layout: an 8-byte magic header, then framed records (see
//! [`crate::record`]) back to back. Appends only ever extend the file, so
//! after a crash the log is a valid prefix followed by at most one torn
//! frame plus garbage. Recovery ([`Wal::open`]) replays records until the
//! first decode failure, **truncates** the file back to the end of the
//! last valid record, and reports what it clipped — a torn tail can cost
//! the unsynced suffix, never a wrong record (each frame's CRC vouches for
//! its payload).
//!
//! Durability: [`Wal::append`] only `write()`s; the caller decides when to
//! [`Wal::sync`] (the store's flusher batches many appends per fsync).

use crate::error::StoreError;
use crate::record::{self, StoreRecord};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file magic + version ("OAWAL" v1); bumped on any layout change.
pub const WAL_MAGIC: u64 = 0x4F41_5741_4C00_0001;

/// Byte length of the file header (the magic).
pub const WAL_HEADER: u64 = 8;

/// What [`Wal::open`] recovered from an existing log.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// The records of the longest valid prefix — live regions and
    /// tombstones alike — in append order.
    pub records: Vec<StoreRecord>,
    /// Bytes clipped off the tail (torn final write, or garbage).
    pub discarded_bytes: u64,
}

/// An open write-ahead log (see the module docs).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Current file length; appends extend it, truncation resets it.
    len: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying the longest valid
    /// record prefix and truncating any torn tail.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failures; [`StoreError::BadMagic`]
    /// when the file exists but is not a WAL (it is left untouched).
    pub fn open(path: &Path) -> Result<(Wal, WalRecovery), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovery = WalRecovery::default();
        let valid_len = if bytes.is_empty() {
            file.write_all(&WAL_MAGIC.to_le_bytes())?;
            file.sync_all()?;
            WAL_HEADER
        } else if bytes.len() < WAL_HEADER as usize {
            // A crash between create and header sync: nothing recoverable.
            recovery.discarded_bytes = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&WAL_MAGIC.to_le_bytes())?;
            file.sync_all()?;
            WAL_HEADER
        } else {
            let magic = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes checked"));
            if magic != WAL_MAGIC {
                return Err(StoreError::BadMagic {
                    path: path.to_path_buf(),
                    found: magic,
                });
            }
            let mut cursor = &bytes[WAL_HEADER as usize..];
            loop {
                let remaining_before = cursor.len();
                match record::get_any_record(&mut cursor) {
                    Ok(r) => recovery.records.push(r),
                    Err(_) => {
                        // Torn tail (or in-place corruption): clip here.
                        recovery.discarded_bytes = remaining_before as u64;
                        break;
                    }
                }
                if cursor.is_empty() {
                    break;
                }
            }
            let valid = bytes.len() as u64 - recovery.discarded_bytes;
            if recovery.discarded_bytes > 0 {
                file.set_len(valid)?;
                file.sync_all()?;
            }
            valid
        };
        file.seek(SeekFrom::Start(valid_len))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: valid_len,
            },
            recovery,
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER
    }

    /// Appends pre-encoded frames (no fsync — see [`Wal::sync`]). Returns
    /// the bytes written.
    ///
    /// # Errors
    /// [`std::io::Error`] from the underlying write. On failure the file
    /// is rolled back to the last good frame boundary (truncate + seek),
    /// so a partial frame can never sit *between* this batch and a later
    /// successful one — recovery would clip everything after the tear,
    /// including records whose fsync was acknowledged.
    pub fn append(&mut self, frames: &[Vec<u8>]) -> std::io::Result<u64> {
        let mut written = 0u64;
        for frame in frames {
            if let Err(e) = self.file.write_all(frame) {
                // Best-effort rollback; if even this fails the device is
                // gone and the caller must stop trusting the log anyway.
                let _ = self.file.set_len(self.len);
                let _ = self.file.seek(SeekFrom::Start(self.len));
                return Err(e);
            }
            written += frame.len() as u64;
        }
        self.len += written;
        Ok(written)
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    /// [`std::io::Error`] from `fsync`.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }

    /// Drops every record: truncates back to the header and syncs. Used
    /// after compaction folds the log into a sealed segment.
    ///
    /// # Errors
    /// [`std::io::Error`] from truncate/seek/fsync.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_HEADER)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER))?;
        self.len = WAL_HEADER;
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, encode_tombstone, RegionTombstone, StoredRegion};
    use crate::testutil::{region, temp_dir};

    fn live(records: &[StoredRegion]) -> Vec<StoreRecord> {
        records.iter().cloned().map(StoreRecord::Live).collect()
    }

    #[test]
    fn fresh_log_opens_empty_and_replays_appends() {
        let dir = temp_dir("wal_fresh");
        let path = dir.join("wal.log");
        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        assert!(wal.is_empty());
        let a = region(0, &[1.0, 2.0], 0.5);
        let b = region(1, &[-3.0, 0.25], -1.0);
        wal.append(&[
            encode_record(a.fingerprint, &a.interpretation),
            encode_record(b.fingerprint, &b.interpretation),
        ])
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records, live(&[a, b]));
        assert_eq!(rec.discarded_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstones_replay_in_order_with_live_records() {
        let dir = temp_dir("wal_tombstone");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let a = region(0, &[1.0, 2.0], 0.5);
        let t = RegionTombstone {
            fingerprint: a.fingerprint,
            class: 0,
        };
        let b = region(1, &[-3.0, 0.25], -1.0);
        wal.append(&[
            encode_record(a.fingerprint, &a.interpretation),
            encode_tombstone(t),
            encode_record(b.fingerprint, &b.interpretation),
        ])
        .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(
            rec.records,
            vec![
                StoreRecord::Live(a),
                StoreRecord::Tombstone(t),
                StoreRecord::Live(b),
            ]
        );
        assert_eq!(rec.discarded_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_clipped_to_the_longest_valid_prefix() {
        let dir = temp_dir("wal_torn");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let a = region(0, &[1.0], 0.0);
        let b = region(0, &[2.0], 0.0);
        wal.append(&[
            encode_record(a.fingerprint, &a.interpretation),
            encode_record(b.fingerprint, &b.interpretation),
        ])
        .unwrap();
        wal.sync().unwrap();
        let full = wal.len();
        drop(wal);
        // Tear 5 bytes off the final record.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 5).unwrap();
        drop(file);
        let (wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records, live(std::slice::from_ref(&a)));
        assert!(rec.discarded_bytes > 0);
        // The file itself was truncated back to the valid prefix…
        let reopened_len = wal.len();
        drop(wal);
        // …so a second recovery sees a clean log.
        let (_, rec2) = Wal::open(&path).unwrap();
        assert_eq!(rec2.records, live(&[a]));
        assert_eq!(rec2.discarded_bytes, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), reopened_len);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_refused_not_clobbered() {
        let dir = temp_dir("wal_foreign");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"definitely not a wal file").unwrap();
        assert!(matches!(Wal::open(&path), Err(StoreError::BadMagic { .. })));
        // The refusal must leave the file byte-identical.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a wal file".to_vec()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sub_header_garbage_is_reset_to_a_fresh_log() {
        let dir = temp_dir("wal_stub");
        let path = dir.join("wal.log");
        std::fs::write(&path, [0xAB, 0xCD]).unwrap();
        let (wal, rec) = Wal::open(&path).unwrap();
        assert!(wal.is_empty());
        assert_eq!(rec.discarded_bytes, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_empties_the_log_durably() {
        let dir = temp_dir("wal_reset");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        let a = region(0, &[4.0], 0.0);
        wal.append(&[encode_record(a.fingerprint, &a.interpretation)])
            .unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        // Appends continue cleanly after a reset.
        let b = region(1, &[5.0], 1.0);
        wal.append(&[encode_record(b.fingerprint, &b.interpretation)])
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.records, live(&[b]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
