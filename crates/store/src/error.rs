//! Store-level error type.

use crate::record::RecordError;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (open, write, fsync, rename, remove).
    Io(io::Error),
    /// A file carries the wrong magic — it is not (this version of) a WAL
    /// or segment. The store refuses to touch it rather than destroy
    /// whatever it actually is.
    BadMagic {
        /// The offending file.
        path: PathBuf,
        /// The value found where the magic was expected.
        found: u64,
    },
    /// A record failed to decode where corruption is not tolerated (e.g.
    /// inside an explicit integrity check, as opposed to tail replay,
    /// which clips torn records silently).
    Record(RecordError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::BadMagic { path, found } => {
                write!(
                    f,
                    "{} is not a store file (magic {found:#018x})",
                    path.display()
                )
            }
            StoreError::Record(e) => write!(f, "store record: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Record(e) => Some(e),
            StoreError::BadMagic { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<RecordError> for StoreError {
    fn from(e: RecordError) -> Self {
        StoreError::Record(e)
    }
}
