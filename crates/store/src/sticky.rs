//! First-error-sticky failure slot for the WAL/flusher handoff.
//!
//! A failed WAL is failed for good: once any accepted append has been
//! dropped, no later durability barrier may ack — otherwise lost data is
//! silently acknowledged. [`StickyError`] is the single-assignment slot
//! that enforces this: the **first** recorded failure wins, every later
//! record is a no-op, and every reader (each barrier, including the final
//! one in `RegionStore::close`) sees that first failure forever. The
//! first-write-wins race is model-checked under `--cfg loom` in
//! `tests/loom.rs` at the workspace root.

use openapi_sync::Mutex;

/// A write-once error slot (see the module docs).
#[derive(Debug, Default)]
pub struct StickyError {
    slot: Mutex<Option<String>>,
}

impl StickyError {
    /// An empty (healthy) slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `msg` if no failure was recorded yet; later calls are
    /// no-ops. Returns whether this call was the one that stuck.
    pub fn record(&self, msg: impl Into<String>) -> bool {
        let mut slot = self.slot.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(msg.into());
        true
    }

    /// The sticky failure, if any. A `Some` is the first failure ever
    /// recorded and never changes afterwards.
    pub fn get(&self) -> Option<String> {
        self.slot.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_recorded_error_wins_forever() {
        let sticky = StickyError::new();
        assert_eq!(sticky.get(), None);
        assert!(sticky.record("disk on fire"));
        assert!(!sticky.record("later, unrelated"));
        assert_eq!(sticky.get().as_deref(), Some("disk on fire"));
    }
}
