//! Atomic store statistics: recovery, append, flush, and lookup counters.

use openapi_sync::atomic::{AtomicU64, Ordering};
use std::fmt;

/// Lock-free counters the store's callers and its flusher thread record
/// into. Recovery counters are written once at open; the rest are monotone
/// over the store's lifetime.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// New regions accepted (queued for the WAL).
    pub(crate) appends: AtomicU64,
    /// Appends skipped because the region was already durable.
    pub(crate) duplicate_appends: AtomicU64,
    /// Records actually written to the WAL by the flusher.
    pub(crate) flushed_records: AtomicU64,
    /// `fsync` calls issued by the flusher (≤ `flushed_records`: batched).
    pub(crate) fsyncs: AtomicU64,
    /// Membership lookups served.
    pub(crate) lookups: AtomicU64,
    /// Lookups that found their region.
    pub(crate) hits: AtomicU64,
    /// Compaction passes completed.
    pub(crate) compactions: AtomicU64,
    /// Records replayed from the WAL at open.
    pub(crate) recovered_wal_records: AtomicU64,
    /// Records replayed from sealed segments at open.
    pub(crate) recovered_segment_records: AtomicU64,
    /// Torn/corrupt tail bytes clipped during recovery.
    pub(crate) recovered_discarded_bytes: AtomicU64,
}

impl StoreStats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        // ordering: Relaxed — independent monotone counters; no reader
        // infers cross-counter state from one load (see `snapshot`).
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters; the gauges (`regions`,
    /// `wal_bytes`, `segments`) describe state the store owns and are
    /// filled in by [`crate::RegionStore::stats`].
    ///
    /// # Torn reads
    /// Counters are loaded one by one with no cross-counter atomicity: a
    /// snapshot racing the flusher may see an append without its flush.
    /// Each counter is individually exact; after `flush`/`close` returns,
    /// the barrier ack's channel edge makes the whole snapshot exact.
    pub(crate) fn snapshot(
        &self,
        regions: usize,
        wal_bytes: u64,
        segments: usize,
    ) -> StoreStatsSnapshot {
        // ordering: Relaxed — see the torn-reads contract above.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StoreStatsSnapshot {
            regions,
            wal_bytes,
            segments,
            appends: load(&self.appends),
            duplicate_appends: load(&self.duplicate_appends),
            flushed_records: load(&self.flushed_records),
            fsyncs: load(&self.fsyncs),
            lookups: load(&self.lookups),
            hits: load(&self.hits),
            compactions: load(&self.compactions),
            recovered_wal_records: load(&self.recovered_wal_records),
            recovered_segment_records: load(&self.recovered_segment_records),
            recovered_discarded_bytes: load(&self.recovered_discarded_bytes),
        }
    }
}

/// A point-in-time view of [`StoreStats`] plus the store gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStatsSnapshot {
    /// Distinct regions durable (or queued durable) right now.
    pub regions: usize,
    /// Current WAL length in bytes (header included).
    pub wal_bytes: u64,
    /// Sealed segment files on disk.
    pub segments: usize,
    /// New regions accepted.
    pub appends: u64,
    /// Appends skipped as already-durable duplicates.
    pub duplicate_appends: u64,
    /// Records written to the WAL.
    pub flushed_records: u64,
    /// Batched `fsync` calls issued.
    pub fsyncs: u64,
    /// Membership lookups served.
    pub lookups: u64,
    /// Lookups that found their region.
    pub hits: u64,
    /// Compaction passes completed.
    pub compactions: u64,
    /// Records replayed from the WAL at open.
    pub recovered_wal_records: u64,
    /// Records replayed from sealed segments at open.
    pub recovered_segment_records: u64,
    /// Torn/corrupt tail bytes clipped during recovery.
    pub recovered_discarded_bytes: u64,
}

impl fmt::Display for StoreStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "store    regions {:>6}   hits {:>8}/{:<8}   appends {:>6} (+{} dup)",
            self.regions, self.hits, self.lookups, self.appends, self.duplicate_appends
        )?;
        write!(
            f,
            "durable  wal {:>8} B   segments {:>3}   fsyncs {:>5}   recovered {}+{} (clipped {} B)",
            self.wal_bytes,
            self.segments,
            self.fsyncs,
            self.recovered_segment_records,
            self.recovered_wal_records,
            self.recovered_discarded_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_what_was_recorded() {
        let stats = StoreStats::default();
        StoreStats::add(&stats.appends, 5);
        StoreStats::add(&stats.duplicate_appends, 2);
        StoreStats::add(&stats.flushed_records, 5);
        StoreStats::add(&stats.fsyncs, 1);
        StoreStats::add(&stats.lookups, 10);
        StoreStats::add(&stats.hits, 7);
        let snap = stats.snapshot(5, 1234, 1);
        assert_eq!(snap.appends, 5);
        assert_eq!(snap.duplicate_appends, 2);
        assert_eq!(snap.fsyncs, 1);
        assert_eq!(snap.hits, 7);
        assert_eq!(snap.regions, 5);
        assert_eq!(snap.wal_bytes, 1234);
        let text = snap.to_string();
        assert!(text.contains("regions") && text.contains("fsyncs"));
    }
}
