//! Anti-entropy digests and deltas: the store-side half of the fabric.
//!
//! Theorem 2 makes every stored fact *immutable*, so two stores of the
//! same hidden model converge by *set union* — no versions, no conflicts.
//! Two kinds of fact flow: live records ("this region's interpretation is
//! exactly this") and tombstones ("this region's key is stale, never
//! serve it" — the drift detector's verdict when the hidden model was
//! silently swapped). A tombstone is itself an immutable fact, and it
//! *wins* permanently: merging it with the record it suppresses yields
//! the tombstone in any order, so the union stays conflict-free and
//! order-independent. This module gives a store the two primitives
//! union-by-gossip needs:
//!
//! * [`StoreDigest`] — a compact summary of the fact set, bucketed by
//!   sync key (the frame's CRC-64/XZ, which content-addresses the exact
//!   frame bytes — tombstone frames included, while records a tombstone
//!   suppressed drop out, so two stores that forgot the same region agree
//!   again). Two stores compare digests bucket-by-bucket; equal buckets
//!   are skipped wholesale, differing buckets name exactly where the
//!   missing facts live.
//! * [`SyncDelta`] — the raw WAL frames for keys a peer is missing,
//!   size-capped so one pull never balloons; `truncated` tells the peer to
//!   come back for the rest. The ≥1-record progress guarantee covers
//!   tombstone-only deltas too.
//!
//! The sync key is deliberately the *frame CRC*, not the region
//! fingerprint: the fingerprint is a quantized locality key (two genuinely
//! different regions may collide), while the CRC addresses the exact
//! on-disk bytes. A fact crosses the fabric as those bytes, unmodified,
//! so "peer has key k" means "peer has this exact fact".

/// Number of digest buckets. Keys spread by `key % DIGEST_BUCKETS`; with
/// CRC-distributed keys each bucket's XOR/count pair detects any single
/// missing record, and equal digests mean equal sets with overwhelming
/// probability (the serving path re-verifies membership anyway — a false
/// "in sync" costs a later gossip round, never a wrong answer).
pub const DIGEST_BUCKETS: usize = 64;

/// One digest bucket: XOR of the sync keys in it, and how many there are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DigestBucket {
    /// XOR of every sync key hashed into this bucket.
    pub xor: u64,
    /// Number of keys in this bucket.
    pub count: u64,
}

/// A compact fingerprint-set summary: [`DIGEST_BUCKETS`] XOR/count pairs
/// over the store's sync keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreDigest {
    /// The per-bucket summaries, indexed by `key % DIGEST_BUCKETS`.
    pub buckets: [DigestBucket; DIGEST_BUCKETS],
}

impl Default for StoreDigest {
    // Manual impl: std derives array Default only up to 32 elements.
    fn default() -> Self {
        StoreDigest {
            buckets: [DigestBucket::default(); DIGEST_BUCKETS],
        }
    }
}

impl StoreDigest {
    /// The bucket index a sync key hashes into.
    pub fn bucket_of(key: u64) -> usize {
        (key % DIGEST_BUCKETS as u64) as usize
    }

    /// Folds one sync key into the digest.
    pub fn add(&mut self, key: u64) {
        let b = &mut self.buckets[Self::bucket_of(key)];
        b.xor ^= key;
        b.count += 1;
    }

    /// Total records summarized.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Bucket indices where `self` and `other` disagree — the only places
    /// a pull needs to look. Equal digests return an empty vector.
    pub fn differing_buckets(&self, other: &StoreDigest) -> Vec<u32> {
        (0..DIGEST_BUCKETS as u32)
            .filter(|&i| self.buckets[i as usize] != other.buckets[i as usize])
            .collect()
    }
}

/// The answer to a pull: concatenated raw record frames (each exactly the
/// bytes the serving store wrote to its own WAL), with a size cap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncDelta {
    /// Concatenated frames — live records and tombstones — decodable by
    /// [`crate::record::get_any_record`] in a loop.
    pub frames: Vec<u8>,
    /// How many records `frames` holds.
    pub records: u64,
    /// True when the size cap cut the delta short: more records differ,
    /// pull again with the keys now held.
    pub truncated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_independent_and_detects_any_difference() {
        let keys = [3u64, 77, 64, 65, 1 << 40, u64::MAX];
        let mut forward = StoreDigest::default();
        let mut backward = StoreDigest::default();
        for &k in &keys {
            forward.add(k);
        }
        for &k in keys.iter().rev() {
            backward.add(k);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.total(), keys.len() as u64);
        assert!(forward.differing_buckets(&backward).is_empty());

        // Dropping any one key moves exactly that key's bucket.
        for (i, &k) in keys.iter().enumerate() {
            let mut partial = StoreDigest::default();
            for (j, &other) in keys.iter().enumerate() {
                if j != i {
                    partial.add(other);
                }
            }
            let diff = forward.differing_buckets(&partial);
            assert_eq!(diff, vec![StoreDigest::bucket_of(k) as u32]);
        }
    }

    #[test]
    fn empty_digests_agree() {
        let a = StoreDigest::default();
        let b = StoreDigest::default();
        assert_eq!(a.total(), 0);
        assert!(a.differing_buckets(&b).is_empty());
    }
}
