//! The one record codec every persistence surface shares.
//!
//! A *record* is one `(fingerprint, Interpretation)` pair. On every durable
//! surface — the write-ahead log, sealed segments, and the cache snapshot in
//! `openapi-serve` — a record travels inside a *frame*:
//!
//! ```text
//! ┌────────────┬────────────┬─────────────────────┐
//! │ len: u32LE │ crc: u64LE │ payload (len bytes) │
//! └────────────┴────────────┴─────────────────────┘
//! ```
//!
//! `crc` is CRC-64/XZ over the payload, so a torn write (length header
//! present, payload short), a truncated tail, or in-place corruption is
//! detected before a single byte of the payload is trusted. The payload
//! itself follows the workspace codec conventions
//! ([`openapi_linalg::codec`]): length-prefixed little-endian fields —
//! fingerprint, class, contrast count, then per contrast `(c', bias,
//! weights)`.
//!
//! Decoding validates at three altitudes, in order: frame (length
//! plausible, bytes present), checksum (payload uncorrupted), and entry
//! ([`Interpretation::from_pairwise`] — non-empty contrasts, consistent
//! dimensions). Malformed input of any kind yields a [`RecordError`],
//! never a panic.

use bytes::{Buf, BufMut};
use openapi_core::decision::{Interpretation, PairwiseCoreParams, RegionFingerprint};
use openapi_core::InterpretError;
use openapi_linalg::codec::{self, CodecError};
use std::fmt;
use std::sync::Arc;

/// Frame header bytes: u32 payload length + u64 CRC.
pub const FRAME_HEADER: usize = 12;

/// Upper bound on a single frame's payload — corrupted length fields must
/// fail fast instead of attempting a huge allocation (a real record at
/// `d = 784`, 100 classes is well under 1 MiB).
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// One decoded record: the region's canonical key and its interpretation,
/// already shared so cache admission never copies the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRegion {
    /// Canonical key of the region (as persisted; lookups re-verify
    /// membership against the parameters, so a stale key costs nothing).
    pub fingerprint: RegionFingerprint,
    /// The region's exact interpretation.
    pub interpretation: Arc<Interpretation>,
}

/// A durable "forget this region" fact: the `(class, fingerprint)` key of
/// a region the hidden model stopped explaining (drift detection caught an
/// `explains_probe` failure on it). Tombstones travel in the same framed
/// codec as live records, so the WAL, sealed segments, and the anti-entropy
/// fabric all carry them — an invalidated region stays invalidated through
/// compaction, restart, and set-union with a stale peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionTombstone {
    /// Canonical key of the suppressed region.
    pub fingerprint: RegionFingerprint,
    /// The class whose `(class, fingerprint)` key is suppressed.
    pub class: usize,
}

/// Any record a durable surface can hold: a live region or a tombstone.
/// Recovery and fabric ingestion decode this ([`get_any_record`]); the
/// serving path's wire codec stays live-only ([`get_record`]) because a
/// tombstone is never an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreRecord {
    /// A solved region's interpretation.
    Live(StoredRegion),
    /// A "this key is stale, never serve it" marker.
    Tombstone(RegionTombstone),
}

impl StoreRecord {
    /// The `(class, fingerprint)` key this record is about.
    pub fn key(&self) -> (usize, u64) {
        match self {
            StoreRecord::Live(r) => (r.interpretation.class, r.fingerprint.0),
            StoreRecord::Tombstone(t) => (t.class, t.fingerprint.0),
        }
    }

    /// Re-encodes the record's canonical frame (deterministic, so the
    /// bytes are identical to what was — or will be — persisted).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            StoreRecord::Live(r) => encode_record(r.fingerprint, &r.interpretation),
            StoreRecord::Tombstone(t) => encode_tombstone(*t),
        }
    }
}

/// Why decoding a frame or record failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// Truncated or implausible binary payload.
    Codec(CodecError),
    /// The payload bytes do not hash to the stored checksum.
    Checksum {
        /// CRC stored in the frame header.
        stored: u64,
        /// CRC computed over the payload actually read.
        computed: u64,
    },
    /// The payload decoded structurally but is not a valid interpretation
    /// (empty contrast list, ragged dimensions).
    BadEntry(InterpretError),
    /// A valid tombstone frame reached a live-records-only decoder
    /// ([`get_record`], which backs the serving wire — a tombstone is
    /// never an answer). Use [`get_any_record`] where tombstones belong.
    UnexpectedTombstone(RegionTombstone),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Codec(e) => write!(f, "record frame: {e}"),
            RecordError::Checksum { stored, computed } => write!(
                f,
                "record checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            RecordError::BadEntry(e) => write!(f, "record entry invalid: {e}"),
            RecordError::UnexpectedTombstone(t) => write!(
                f,
                "tombstone for class {} fingerprint {:#018x} where only live records belong",
                t.class, t.fingerprint.0
            ),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<CodecError> for RecordError {
    fn from(e: CodecError) -> Self {
        RecordError::Codec(e)
    }
}

/// CRC-64/XZ lookup table, built at compile time.
const CRC64_TABLE: [u64; 256] = {
    // Reflected ECMA-182 polynomial.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ of `bytes` (init and final XOR all-ones).
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frames an opaque payload: length, CRC, bytes. The inverse of
/// [`get_frame`].
pub fn put_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u64_le(crc64(payload));
    buf.extend_from_slice(payload);
}

/// Reads one frame, returning the payload slice after verifying length
/// plausibility, byte availability, and the checksum.
///
/// # Errors
/// [`RecordError::Codec`] on truncation or an implausible length,
/// [`RecordError::Checksum`] when the payload fails verification.
pub fn get_frame<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], RecordError> {
    if buf.remaining() < FRAME_HEADER {
        return Err(CodecError::Truncated {
            what: "record frame header",
            needed: FRAME_HEADER,
            remaining: buf.remaining(),
        }
        .into());
    }
    let len = buf.get_u32_le();
    if len > MAX_PAYLOAD {
        return Err(CodecError::BadLength {
            what: "record frame payload",
            value: u64::from(len),
        }
        .into());
    }
    let stored = buf.get_u64_le();
    let len = len as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated {
            what: "record frame payload",
            needed: len,
            remaining: buf.remaining(),
        }
        .into());
    }
    let (payload, rest) = buf.split_at(len);
    let computed = crc64(payload);
    if computed != stored {
        return Err(RecordError::Checksum { stored, computed });
    }
    *buf = rest;
    Ok(payload)
}

/// Encodes one record payload (no frame): fingerprint, class, contrasts.
fn put_payload(buf: &mut Vec<u8>, fingerprint: RegionFingerprint, i: &Interpretation) {
    buf.put_u64_le(fingerprint.0);
    codec::put_len(buf, i.class);
    codec::put_len(buf, i.pairwise.len());
    for p in &i.pairwise {
        codec::put_len(buf, p.c_prime);
        buf.put_f64_le(p.bias);
        codec::put_vector(buf, &p.weights);
    }
}

/// Decodes a record payload written by [`put_payload`]. Decision features
/// are recomputed from the persisted pairwise parameters (Equation 1 is
/// deterministic, so the result is bit-identical to the original).
fn get_payload(mut payload: &[u8]) -> Result<StoredRegion, RecordError> {
    let buf = &mut payload;
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated {
            what: "record fingerprint",
            needed: 8,
            remaining: buf.remaining(),
        }
        .into());
    }
    let fingerprint = RegionFingerprint(buf.get_u64_le());
    let class = codec::get_len(buf, "record class")?;
    let contrasts = codec::get_len(buf, "record contrasts")?;
    let mut pairwise = Vec::with_capacity(contrasts.min(1 << 16));
    for _ in 0..contrasts {
        let c_prime = codec::get_len(buf, "contrast class")?;
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated {
                what: "contrast bias",
                needed: 8,
                remaining: buf.remaining(),
            }
            .into());
        }
        let bias = buf.get_f64_le();
        let weights = codec::get_vector(buf, "contrast weights")?;
        pairwise.push(PairwiseCoreParams {
            c_prime,
            weights,
            bias,
        });
    }
    let interpretation =
        Interpretation::from_pairwise(class, pairwise).map_err(RecordError::BadEntry)?;
    Ok(StoredRegion {
        fingerprint,
        interpretation: Arc::new(interpretation),
    })
}

/// Appends one framed record to `buf`.
pub fn put_record(buf: &mut Vec<u8>, fingerprint: RegionFingerprint, i: &Interpretation) {
    let mut payload = Vec::with_capacity(64 + 8 * i.decision_features.len() * i.pairwise.len());
    put_payload(&mut payload, fingerprint, i);
    put_frame(buf, &payload);
}

/// Encodes one framed record into a fresh buffer.
pub fn encode_record(fingerprint: RegionFingerprint, i: &Interpretation) -> Vec<u8> {
    let mut buf = Vec::new();
    put_record(&mut buf, fingerprint, i);
    buf
}

/// Marker leading every tombstone payload ("OATOMB" v1; bumped on any
/// tombstone-layout change).
pub const TOMBSTONE_MAGIC: u64 = 0x4F41_544F_4D42_0001;

/// Exact byte length of a tombstone payload: magic + fingerprint + class,
/// each a `u64` LE. A minimal *live* payload is strictly longer — its
/// fingerprint, class, contrast count, and one mandatory contrast
/// (`c'` + bias + weight-vector length prefix) already total 48 bytes —
/// so payload length plus the leading magic disambiguates the two record
/// kinds without changing the frame format.
pub const TOMBSTONE_PAYLOAD: usize = 24;

/// Whether a checksum-verified frame payload is a tombstone.
fn is_tombstone_payload(payload: &[u8]) -> bool {
    payload.len() == TOMBSTONE_PAYLOAD && payload[..8] == TOMBSTONE_MAGIC.to_le_bytes()
}

/// Decodes a tombstone payload already vetted by [`is_tombstone_payload`].
fn get_tombstone_payload(payload: &[u8]) -> RegionTombstone {
    let fingerprint = u64::from_le_bytes(payload[8..16].try_into().expect("24-byte payload"));
    let class = u64::from_le_bytes(payload[16..24].try_into().expect("24-byte payload"));
    RegionTombstone {
        fingerprint: RegionFingerprint(fingerprint),
        class: class as usize,
    }
}

/// Appends one framed tombstone to `buf`.
pub fn put_tombstone(buf: &mut Vec<u8>, t: RegionTombstone) {
    let mut payload = Vec::with_capacity(TOMBSTONE_PAYLOAD);
    payload.put_u64_le(TOMBSTONE_MAGIC);
    payload.put_u64_le(t.fingerprint.0);
    payload.put_u64_le(t.class as u64);
    put_frame(buf, &payload);
}

/// Encodes one framed tombstone into a fresh buffer.
pub fn encode_tombstone(t: RegionTombstone) -> Vec<u8> {
    let mut buf = Vec::new();
    put_tombstone(&mut buf, t);
    buf
}

/// The sync key of an encoded frame: its CRC-64/XZ, read straight out of
/// the header (bytes `[4..12]`). Content-addresses the exact frame bytes,
/// for live records and tombstones alike.
///
/// # Panics
/// Panics when `frame` is shorter than a frame header — callers hand this
/// frames they encoded themselves.
pub fn sync_key_of(frame: &[u8]) -> u64 {
    u64::from_le_bytes(frame[4..FRAME_HEADER].try_into().expect("frame header"))
}

/// Reads one framed **live** record, advancing `buf` past it.
///
/// # Errors
/// [`RecordError`] on a bad frame, checksum mismatch, invalid entry, or a
/// tombstone frame ([`RecordError::UnexpectedTombstone`] — this decoder
/// backs the serving wire, where a tombstone is never an answer); `buf` is
/// only advanced on success, so prefix replays can stop exactly at the
/// last valid record.
pub fn get_record(buf: &mut &[u8]) -> Result<StoredRegion, RecordError> {
    let mut probe = *buf;
    let payload = get_frame(&mut probe)?;
    if is_tombstone_payload(payload) {
        return Err(RecordError::UnexpectedTombstone(get_tombstone_payload(
            payload,
        )));
    }
    let record = get_payload(payload)?;
    *buf = probe;
    Ok(record)
}

/// Reads one framed record of either kind, advancing `buf` past it. This
/// is the recovery and fabric-ingestion decoder — the surfaces where
/// tombstones legitimately appear.
///
/// # Errors
/// [`RecordError`] on a bad frame, checksum mismatch, or invalid entry;
/// `buf` is only advanced on success.
pub fn get_any_record(buf: &mut &[u8]) -> Result<StoreRecord, RecordError> {
    let mut probe = *buf;
    let payload = get_frame(&mut probe)?;
    let record = if is_tombstone_payload(payload) {
        StoreRecord::Tombstone(get_tombstone_payload(payload))
    } else {
        StoreRecord::Live(get_payload(payload)?)
    };
    *buf = probe;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_linalg::Vector;

    fn region(class: usize, weights: Vec<f64>, bias: f64) -> StoredRegion {
        let interpretation = Interpretation::from_pairwise(
            class,
            vec![PairwiseCoreParams {
                c_prime: class + 1,
                weights: Vector(weights),
                bias,
            }],
        )
        .unwrap();
        StoredRegion {
            fingerprint: interpretation.fingerprint(6),
            interpretation: Arc::new(interpretation),
        }
    }

    #[test]
    fn crc64_matches_the_xz_check_value() {
        // The CRC-64/XZ specification check: crc("123456789").
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for r in [
            region(0, vec![1.5, -2.25, 1e-300], 0.125),
            region(3, vec![f64::MIN_POSITIVE, 0.0], -7.5),
        ] {
            let bytes = encode_record(r.fingerprint, &r.interpretation);
            let mut slice = bytes.as_slice();
            let back = get_record(&mut slice).unwrap();
            assert_eq!(back, r);
            assert!(slice.is_empty(), "decoder must consume exactly");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let r = region(1, vec![0.5, -0.25], 0.75);
        let clean = encode_record(r.fingerprint, &r.interpretation);
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            let mut slice = bytes.as_slice();
            match get_record(&mut slice) {
                // A flip in the length field may masquerade as truncation
                // or an implausible length; anywhere else the CRC fires.
                Err(_) => {}
                Ok(back) => {
                    // The only undetectable flips would be CRC collisions;
                    // a single-bit flip never collides in CRC-64.
                    panic!("flip at byte {i} decoded as {back:?}");
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let r = region(2, vec![1.0, 2.0, 3.0], -0.5);
        let clean = encode_record(r.fingerprint, &r.interpretation);
        for keep in 0..clean.len() {
            let mut slice = &clean[..keep];
            let before = slice;
            let err = get_record(&mut slice).expect_err("truncated record must fail");
            assert!(matches!(
                err,
                RecordError::Codec(CodecError::Truncated { .. }) | RecordError::Checksum { .. }
            ));
            // The cursor must not advance on failure.
            assert_eq!(slice.len(), before.len());
        }
    }

    #[test]
    fn implausible_frame_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.put_u32_le(u32::MAX);
        buf.put_u64_le(0);
        buf.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            get_frame(&mut buf.as_slice()),
            Err(RecordError::Codec(CodecError::BadLength { .. }))
        ));
    }

    fn tombstone(class: usize, fingerprint: u64) -> RegionTombstone {
        RegionTombstone {
            fingerprint: RegionFingerprint(fingerprint),
            class,
        }
    }

    #[test]
    fn tombstones_round_trip_bit_exactly() {
        for t in [tombstone(0, 0), tombstone(7, u64::MAX), tombstone(3, 42)] {
            let bytes = encode_tombstone(t);
            assert_eq!(bytes.len(), FRAME_HEADER + TOMBSTONE_PAYLOAD);
            let mut slice = bytes.as_slice();
            let back = get_any_record(&mut slice).unwrap();
            assert_eq!(back, StoreRecord::Tombstone(t));
            assert!(slice.is_empty(), "decoder must consume exactly");
            assert_eq!(back.key(), (t.class, t.fingerprint.0));
            assert_eq!(back.encode(), bytes, "re-encode is canonical");
        }
    }

    #[test]
    fn get_any_record_decodes_both_kinds_from_one_stream() {
        let live = region(1, vec![0.5, -0.25], 0.75);
        let t = tombstone(1, live.fingerprint.0);
        let mut stream = encode_record(live.fingerprint, &live.interpretation);
        stream.extend_from_slice(&encode_tombstone(t));
        let mut slice = stream.as_slice();
        assert_eq!(get_any_record(&mut slice).unwrap(), StoreRecord::Live(live));
        assert_eq!(
            get_any_record(&mut slice).unwrap(),
            StoreRecord::Tombstone(t)
        );
        assert!(slice.is_empty());
    }

    #[test]
    fn live_only_decoder_refuses_tombstones_without_advancing() {
        let t = tombstone(2, 99);
        let bytes = encode_tombstone(t);
        let mut slice = bytes.as_slice();
        assert_eq!(
            get_record(&mut slice),
            Err(RecordError::UnexpectedTombstone(t))
        );
        assert_eq!(slice.len(), bytes.len(), "cursor must not advance");
    }

    #[test]
    fn every_tombstone_byte_flip_or_truncation_is_detected() {
        let clean = encode_tombstone(tombstone(5, 0xDEAD_BEEF));
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            let mut slice = bytes.as_slice();
            assert!(
                get_any_record(&mut slice).is_err(),
                "flip at byte {i} must not decode"
            );
        }
        for keep in 0..clean.len() {
            let mut slice = &clean[..keep];
            let before = slice;
            get_any_record(&mut slice).expect_err("truncated tombstone must fail");
            assert_eq!(slice.len(), before.len(), "cursor must not advance");
        }
    }

    #[test]
    fn a_short_live_payload_never_masquerades_as_a_tombstone() {
        // The smallest structurally attemptable live payload (fingerprint
        // + class + zero contrasts) happens to be exactly 24 bytes — the
        // tombstone length. Without the magic check it would be ambiguous;
        // with it, a fingerprint would have to equal TOMBSTONE_MAGIC, and
        // even then the old path only reached BadEntry. Pin the magic
        // check: this payload must stay a (rejected) live record.
        let mut payload = Vec::new();
        payload.put_u64_le(42); // fingerprint ≠ TOMBSTONE_MAGIC
        codec::put_len(&mut payload, 0); // class
        codec::put_len(&mut payload, 0); // zero contrasts
        assert_eq!(payload.len(), TOMBSTONE_PAYLOAD);
        let mut buf = Vec::new();
        put_frame(&mut buf, &payload);
        assert!(matches!(
            get_any_record(&mut buf.as_slice()),
            Err(RecordError::BadEntry(_))
        ));
    }

    #[test]
    fn sync_key_reads_the_frame_crc() {
        let r = region(0, vec![1.0], 0.5);
        let frame = encode_record(r.fingerprint, &r.interpretation);
        assert_eq!(sync_key_of(&frame), crc64(&frame[FRAME_HEADER..]));
        let t = encode_tombstone(tombstone(0, 7));
        assert_eq!(sync_key_of(&t), crc64(&t[FRAME_HEADER..]));
        assert_ne!(sync_key_of(&frame), sync_key_of(&t));
    }

    #[test]
    fn structurally_valid_but_empty_entry_is_rejected() {
        // Zero contrasts frame+CRC fine but cannot form an interpretation.
        let mut payload = Vec::new();
        payload.put_u64_le(42); // fingerprint
        codec::put_len(&mut payload, 0); // class
        codec::put_len(&mut payload, 0); // zero contrasts
        let mut buf = Vec::new();
        put_frame(&mut buf, &payload);
        assert!(matches!(
            get_record(&mut buf.as_slice()),
            Err(RecordError::BadEntry(_))
        ));
    }
}
