//! Sealed, immutable segment files.
//!
//! Compaction folds the WAL (plus any earlier segments) into one
//! deduplicated segment: an 8-byte magic header followed by framed records
//! (the same codec as the WAL — see [`crate::record`]). Segments are
//! written to a `.tmp` name, fsynced, then atomically renamed into place,
//! so a crash mid-compaction leaves either no new segment or a complete
//! one — and since the WAL is only truncated *after* the rename lands,
//! every record is durable in at least one file at every instant.
//!
//! Reads still tolerate a torn tail (stop at the first bad frame) for
//! defence in depth; with the tmp-rename protocol that path should never
//! trigger in practice.

use crate::error::StoreError;
use crate::record::{self, StoreRecord};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Segment file magic + version ("OASEG" v1); bumped on any layout change.
pub const SEGMENT_MAGIC: u64 = 0x4F41_5345_4700_0001;

/// File-name prefix/suffix of sealed segments.
const PREFIX: &str = "seg-";
const SUFFIX: &str = ".seg";

/// The segment file name for sequence number `id`.
pub fn segment_name(id: u64) -> String {
    format!("{PREFIX}{id:06}{SUFFIX}")
}

/// Parses a segment sequence number out of a file name.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(PREFIX)?
        .strip_suffix(SUFFIX)?
        .parse()
        .ok()
}

/// Lists the sealed segments under `dir` in ascending sequence order, and
/// deletes any `.tmp` leftovers from an interrupted compaction.
///
/// # Errors
/// [`StoreError::Io`] from directory enumeration.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            // An interrupted compaction's partial write: its records are
            // still in the WAL/old segments, so the file is pure garbage.
            std::fs::remove_file(entry.path()).ok();
            continue;
        }
        if let Some(id) = parse_segment_name(name) {
            segments.push((id, entry.path()));
        }
    }
    segments.sort_by_key(|(id, _)| *id);
    Ok(segments)
}

/// What reading one segment recovered.
#[derive(Debug, Default)]
pub struct SegmentRecovery {
    /// The records of the longest valid prefix — live regions and
    /// tombstones alike — in write order.
    pub records: Vec<StoreRecord>,
    /// Bytes clipped off the tail (0 for a healthy sealed segment).
    pub discarded_bytes: u64,
}

/// Reads a sealed segment, tolerating a torn tail.
///
/// # Errors
/// [`StoreError::Io`] on filesystem failures; [`StoreError::BadMagic`]
/// when the file is not a segment.
pub fn read_segment(path: &Path) -> Result<SegmentRecovery, StoreError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return Ok(SegmentRecovery {
            records: Vec::new(),
            discarded_bytes: bytes.len() as u64,
        });
    }
    let magic = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes checked"));
    if magic != SEGMENT_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            found: magic,
        });
    }
    let mut recovery = SegmentRecovery::default();
    let mut cursor = &bytes[8..];
    while !cursor.is_empty() {
        match record::get_any_record(&mut cursor) {
            Ok(r) => recovery.records.push(r),
            Err(_) => {
                recovery.discarded_bytes = cursor.len() as u64;
                break;
            }
        }
    }
    Ok(recovery)
}

/// Writes a sealed segment atomically: `.tmp` + fsync + rename + dir
/// fsync. Tombstones seal alongside live records — compaction keeps the
/// "forget this region" facts durable even after the records they
/// suppressed are gone. Returns the final path.
///
/// # Errors
/// [`StoreError::Io`] from any write/fsync/rename step.
pub fn write_segment(dir: &Path, id: u64, records: &[StoreRecord]) -> Result<PathBuf, StoreError> {
    let final_path = dir.join(segment_name(id));
    let tmp_path = dir.join(format!("{}.tmp", segment_name(id)));
    let mut buf = Vec::with_capacity(8 + records.len() * 128);
    buf.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    for r in records {
        match r {
            StoreRecord::Live(r) => record::put_record(&mut buf, r.fingerprint, &r.interpretation),
            StoreRecord::Tombstone(t) => record::put_tombstone(&mut buf, *t),
        }
    }
    let mut file = File::create(&tmp_path)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir);
    Ok(final_path)
}

/// Best-effort directory fsync: makes creates/renames/removes durable on
/// filesystems that require it; silently a no-op where directories cannot
/// be opened for sync.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RegionTombstone, StoredRegion};
    use crate::testutil::{region, temp_dir};
    use openapi_core::decision::RegionFingerprint;

    fn live(records: &[StoredRegion]) -> Vec<StoreRecord> {
        records.iter().cloned().map(StoreRecord::Live).collect()
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(segment_name(7), "seg-000007.seg");
        assert_eq!(parse_segment_name("seg-000007.seg"), Some(7));
        assert_eq!(parse_segment_name("seg-1000000.seg"), Some(1_000_000));
        assert_eq!(parse_segment_name("wal.log"), None);
        assert_eq!(parse_segment_name("seg-xyz.seg"), None);
    }

    #[test]
    fn segments_round_trip_and_list_in_order() {
        let dir = temp_dir("seg_roundtrip");
        let a = live(&[region(0, &[1.0], 0.0), region(1, &[2.0], 0.5)]);
        let b = live(&[region(2, &[3.0], -1.0)]);
        write_segment(&dir, 2, &b).unwrap();
        write_segment(&dir, 1, &a).unwrap();
        let listed = list_segments(&dir).unwrap();
        assert_eq!(
            listed.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(read_segment(&listed[0].1).unwrap().records, a);
        assert_eq!(read_segment(&listed[1].1).unwrap().records, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstones_seal_and_read_back_in_order() {
        let dir = temp_dir("seg_tombstone");
        let r = region(0, &[1.0], 0.0);
        let records = vec![
            StoreRecord::Live(r),
            StoreRecord::Tombstone(RegionTombstone {
                fingerprint: RegionFingerprint(77),
                class: 3,
            }),
        ];
        let path = write_segment(&dir, 1, &records).unwrap();
        let rec = read_segment(&path).unwrap();
        assert_eq!(rec.records, records);
        assert_eq!(rec.discarded_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_leftovers_are_swept_on_listing() {
        let dir = temp_dir("seg_tmp");
        write_segment(&dir, 1, &live(&[region(0, &[1.0], 0.0)])).unwrap();
        let stray = dir.join("seg-000009.seg.tmp");
        std::fs::write(&stray, b"partial compaction output").unwrap();
        let listed = list_segments(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        assert!(!stray.exists(), "tmp leftovers must be deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_segment_tail_is_tolerated() {
        let dir = temp_dir("seg_torn");
        let records = live(&[region(0, &[1.0], 0.0), region(0, &[2.0], 0.0)]);
        let path = write_segment(&dir, 1, &records).unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 3).unwrap();
        drop(file);
        let rec = read_segment(&path).unwrap();
        assert_eq!(rec.records, records[..1]);
        assert!(rec.discarded_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_segment_is_refused() {
        let dir = temp_dir("seg_foreign");
        let path = dir.join(segment_name(3));
        std::fs::write(&path, b"not a segment, promise").unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(StoreError::BadMagic { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
