#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `openapi-store` — a durable, log-structured persistence tier for
//! recovered locally linear regions.
//!
//! Theorem 2 of the paper makes each region's interpretation *exact and
//! permanent*: once Algorithm 1 has solved a region, the recovered core
//! parameters never change and never need re-querying. That makes the set
//! of solved regions the most valuable asset the system owns — every
//! record is `1 + T·(d+1)` prediction queries that never have to be paid
//! again. This crate keeps that asset on disk, so a restarted service
//! warm-starts from its own history instead of re-billing the API.
//!
//! # On-disk layout
//!
//! A store directory holds one active write-ahead log and any number of
//! sealed segments:
//!
//! ```text
//! store-dir/
//! ├── wal.log          append-only: magic + framed records, in arrival order
//! ├── seg-000001.seg   sealed: magic + framed, deduplicated records
//! └── seg-000002.seg   (younger segments supersede nothing: records are
//!                       immutable facts, recovery dedupes)
//! ```
//!
//! Every record on every surface uses one codec ([`record`]): a
//! `(fingerprint, Interpretation)` payload inside a `len + CRC-64/XZ`
//! frame. The cache snapshot format in `openapi-serve` wraps the same
//! frames, so the workspace has exactly one persistence framing to audit.
//! *Tombstones* — "forget this region" facts emitted by the drift
//! detector when the hidden model was silently swapped — travel in the
//! same framing ([`record::RegionTombstone`]): they replay from the WAL,
//! seal into segments, and win permanently over the records they
//! suppress, so compaction genuinely forgets a stale region while the
//! fact of its staleness survives restart and anti-entropy exchange.
//!
//! # Durability protocol
//!
//! * **Append** ([`RegionStore::append`]): dedup against the in-memory
//!   index (already-stored regions cost no I/O), then hand the encoded
//!   frame to a dedicated flusher thread. The flusher batches whatever has
//!   accumulated (up to [`StoreConfig::flush_batch`] records), writes once,
//!   and `fsync`s once — many inserts per sync under load, one sync per
//!   insert when idle. [`RegionStore::flush`] is the explicit barrier.
//! * **Recovery** ([`RegionStore::open`]): replay segments in sequence
//!   order, then the WAL's longest valid record prefix. A torn tail —
//!   a crash mid-write — fails its frame's CRC, gets clipped (the file is
//!   truncated back to the valid prefix), and costs at most the records
//!   of the final unsynced batch, never a wrong record.
//! * **Compaction** ([`RegionStore::compact`]): fold everything into one
//!   fresh segment (tmp-write, fsync, atomic rename), *then* empty the WAL
//!   and drop the older segments. Every record is durable in at least one
//!   file at every instant; a crash anywhere leaves duplicates at worst,
//!   which recovery's dedup folds.
//!
//! # Exactness is never delegated to the disk
//!
//! A lookup ([`RegionStore::lookup_probe`]) only returns a stored region
//! whose parameters *explain the caller's own probe* at every contrast —
//! the identical Theorem-2 membership test the in-memory cache applies.
//! Bytes can rot, directories can be swapped, a store can come from a
//! different model entirely: a record either proves itself against the
//! live API's prediction or it is ignored. The CRC framing exists to keep
//! recovery honest (and cheap); correctness never rests on it.
//!
//! # Example
//!
//! Append a solved region, restart, and find it recovered:
//!
//! ```
//! use openapi_core::decision::{Interpretation, PairwiseCoreParams};
//! use openapi_linalg::Vector;
//! use openapi_store::{RegionStore, StoreConfig};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("openapi_store_doc_{}", std::process::id()));
//! let store = RegionStore::open(&dir, StoreConfig::default()).unwrap();
//! let region = Interpretation::from_pairwise(
//!     0,
//!     vec![PairwiseCoreParams {
//!         c_prime: 1,
//!         weights: Vector(vec![0.5, -1.0]),
//!         bias: 0.25,
//!     }],
//! )
//! .unwrap();
//! store.append(region.fingerprint(6), Arc::new(region));
//! store.close().unwrap(); // final WAL flush + fsync
//!
//! // A new process life: every previously solved region is recovered.
//! let reopened = RegionStore::open(&dir, StoreConfig::default()).unwrap();
//! assert_eq!(reopened.len(), 1);
//! reopened.close().unwrap();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

mod error;
pub mod record;
mod segment;
mod stats;
pub mod sticky;
mod store;
pub mod sync;
mod wal;

pub use error::StoreError;
pub use record::{RecordError, RegionTombstone, StoreRecord, StoredRegion};
pub use segment::{read_segment, segment_name, SegmentRecovery, SEGMENT_MAGIC};
pub use stats::{StoreStats, StoreStatsSnapshot};
pub use sticky::StickyError;
pub use store::{RegionStore, StoreConfig};
pub use sync::{DigestBucket, StoreDigest, SyncDelta, DIGEST_BUCKETS};
pub use wal::{Wal, WalRecovery, WAL_MAGIC};

#[cfg(test)]
pub(crate) mod testutil {
    use crate::record::StoredRegion;
    use openapi_core::decision::{Interpretation, PairwiseCoreParams};
    use openapi_linalg::Vector;
    use openapi_sync::atomic::{AtomicU64, Ordering};
    use std::path::PathBuf;
    use std::sync::Arc;

    /// A unique, created temp directory per call — concurrent tests never
    /// share one, and each test removes its own at the end.
    pub fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "openapi_store_{tag}_{}_{}",
            std::process::id(),
            // ordering: Relaxed — uniqueness only; nothing published.
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A synthetic one-contrast region whose weights encode its identity.
    pub fn region(class: usize, weights: &[f64], bias: f64) -> StoredRegion {
        let interpretation = Interpretation::from_pairwise(
            class,
            vec![PairwiseCoreParams {
                c_prime: class + 1,
                weights: Vector(weights.to_vec()),
                bias,
            }],
        )
        .unwrap();
        StoredRegion {
            fingerprint: interpretation.fingerprint(6),
            interpretation: Arc::new(interpretation),
        }
    }

    /// A probability vector consistent with `i` at `x`: the probe its
    /// region's membership test accepts.
    pub fn consistent_probs(i: &Interpretation, x: &Vector) -> Vec<f64> {
        let p = &i.pairwise[0];
        let target = p.weights.dot(x).unwrap() + p.bias;
        let r = target.exp();
        let denom = 1.0 + r;
        let mut probs = vec![0.0; p.c_prime + 1];
        probs[i.class] = r / denom;
        probs[p.c_prime] = 1.0 / denom;
        probs
    }
}
