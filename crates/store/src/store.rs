//! [`RegionStore`]: the durable region tier (see the crate docs for the
//! on-disk layout and durability protocol).

use crate::error::StoreError;
use crate::record::{self, RegionTombstone, StoreRecord, StoredRegion};
use crate::segment::{self, sync_dir};
use crate::stats::{StoreStats, StoreStatsSnapshot};
use crate::sticky::StickyError;
use crate::sync::{StoreDigest, SyncDelta};
use crate::wal::Wal;
use openapi_core::cache::interpretations_agree;
use openapi_core::decision::{Interpretation, RegionFingerprint};
use openapi_linalg::Vector;
use openapi_sync::atomic::{AtomicU64, Ordering};
use openapi_sync::{Mutex, RwLock};
use openapi_trace::{RequestSpan, Stage};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Relative tolerance of the membership test (and of the merge test
    /// that dedupes re-solves of an already-stored region). Keep aligned
    /// with the cache tier's `membership_rtol`.
    pub membership_rtol: f64,
    /// Maximum records the flusher writes per `fsync` batch (clamped ≥ 1).
    /// Larger batches amortize the sync under bursty inserts at the cost
    /// of a longer unsynced window.
    pub flush_batch: usize,
    /// Auto-compact at open when the recovered WAL is at least this many
    /// bytes (`u64::MAX` disables; compaction is always available
    /// explicitly via [`RegionStore::compact`]).
    pub compact_wal_bytes: u64,
    /// Auto-compact from the flusher thread once the *live* WAL reaches
    /// this many bytes (after the batch that crossed the threshold is
    /// written and any waiting durability barriers are acked). On by
    /// default; `u64::MAX` disables. A failed background pass is not a
    /// durability event — every record is still in the WAL — so it leaves
    /// [`RegionStore::flush`] healthy and is simply retried at the next
    /// flush batch.
    pub auto_compact_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            membership_rtol: openapi_core::cache::RegionCacheConfig::default().membership_rtol,
            flush_batch: 64,
            compact_wal_bytes: 8 << 20,
            auto_compact_bytes: 32 << 20,
        }
    }
}

/// What a sync key addresses: a live record slot or a tombstone slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Index into [`Index::records`].
    Live(usize),
    /// Index into [`Index::tombstones`].
    Tombstone(usize),
}

/// The deduplicated in-memory image of everything durable: recovery fills
/// it, appends extend it, lookups scan it. Mirrors the region cache's
/// collision discipline — a fingerprint collision between genuinely
/// different regions keeps both records (the second un-indexed), so the
/// store can never conflate two regions.
///
/// Tombstones win, permanently: once a `(class, fingerprint)` key is
/// tombstoned, every live record under it is suppressed (its slot cleared,
/// its sync key dropped from the gossip surface) and no later admit under
/// the same key succeeds — which makes tombstone-vs-record merge
/// order-independent, so anti-entropy set-union stays conflict-free. A
/// re-solve of a genuinely changed region lands under a fresh fingerprint,
/// so suppression never blocks new facts.
#[derive(Debug, Default)]
struct Index {
    /// Live records in admission order; a slot goes `None` when its
    /// region is tombstoned, keeping positional indices stable.
    records: Vec<Option<StoredRegion>>,
    /// Tombstones in admission order.
    tombstones: Vec<RegionTombstone>,
    /// Count of live (non-suppressed) records.
    live: usize,
    /// `(class, fingerprint) → records index` for the first (canonical)
    /// record of each key.
    by_key: HashMap<(usize, u64), usize>,
    /// `class → records indices`: membership scans (and the collision
    /// dedup scan) only ever touch one class's bucket, so a store holding
    /// many classes never pays for the others on a lookup. Buckets may
    /// point at suppressed slots; iteration filters them.
    by_class: HashMap<usize, Vec<usize>>,
    /// `sync key → slot`. The sync key is the frame's CRC-64/XZ (bytes
    /// `[4..12]` of the encoded frame): it addresses the exact frame
    /// bytes, so the anti-entropy tier can summarize and exchange records
    /// — live and tombstone alike — without conflating fingerprint
    /// collisions.
    by_sync_key: HashMap<u64, Slot>,
    /// Permanently suppressed `(class, fingerprint)` keys.
    tombstoned: HashSet<(usize, u64)>,
}

impl Index {
    /// Admits a record; `Some(frame)` means it was new — the returned
    /// encoded frame is what must be persisted (append reuses it for the
    /// WAL; recovery, which already has it on disk, drops it). `None`
    /// means an agreeing record was already present, or the key is
    /// tombstoned (idempotent either way).
    fn admit(&mut self, record: StoredRegion, rtol: f64) -> Option<Vec<u8>> {
        let class = record.interpretation.class;
        let key = (class, record.fingerprint.0);
        if self.tombstoned.contains(&key) {
            // Tombstone-wins: the key is a dead fact forever. (The caller
            // still owns the freshly solved interpretation and serves it
            // to its own requester — it just never re-enters the store.)
            return None;
        }
        match self.by_key.get(&key) {
            Some(&i)
                if interpretations_agree(
                    &self.records[i]
                        .as_ref()
                        .expect("by_key points at live")
                        .interpretation,
                    &record.interpretation,
                    rtol,
                ) =>
            {
                None
            }
            Some(_) => {
                // Fingerprint collision: store the new region un-indexed —
                // unless an agreeing record is already present (the same
                // merge criterion as the indexed path, so a round-off
                // re-solve of a collided region never appends a duplicate).
                if self
                    .class_records(class)
                    .any(|r| interpretations_agree(&r.interpretation, &record.interpretation, rtol))
                {
                    None
                } else {
                    Some(self.push(record))
                }
            }
            None => {
                self.by_key.insert(key, self.records.len());
                Some(self.push(record))
            }
        }
    }

    /// Admits a tombstone: suppresses every live record under its
    /// `(class, fingerprint)` key — the canonical one and any collided
    /// duplicates — and removes their sync keys from the gossip surface,
    /// so two stores that both tombstone a key converge to equal digests.
    /// `Some(frame)` means the tombstone was new and must be persisted;
    /// `None` means the key was already tombstoned (idempotent).
    fn admit_tombstone(&mut self, t: RegionTombstone) -> Option<Vec<u8>> {
        let key = (t.class, t.fingerprint.0);
        if !self.tombstoned.insert(key) {
            return None;
        }
        self.by_key.remove(&key);
        for i in self.by_class.get(&t.class).cloned().unwrap_or_default() {
            let suppressed = self.records[i]
                .as_ref()
                .is_some_and(|r| r.fingerprint == t.fingerprint);
            if !suppressed {
                continue;
            }
            let dead = self.records[i].take().expect("checked above");
            self.live -= 1;
            let sync_key = record::sync_key_of(&record::encode_record(
                dead.fingerprint,
                &dead.interpretation,
            ));
            // Drop the mapping only if this slot owns it (a CRC collision
            // leaves the first owner in place).
            if let Some(Slot::Live(owner)) = self.by_sync_key.get(&sync_key) {
                if *owner == i {
                    self.by_sync_key.remove(&sync_key);
                }
            }
        }
        let frame = record::encode_tombstone(t);
        // `or_insert` as in `push`: a CRC collision never corrupts the
        // digest's image of `by_sync_key`.
        self.by_sync_key
            .entry(record::sync_key_of(&frame))
            .or_insert(Slot::Tombstone(self.tombstones.len()));
        self.tombstones.push(t);
        Some(frame)
    }

    /// Appends an admitted record, indexing it by class and sync key, and
    /// returns its canonical encoded frame (deterministic, so it is
    /// byte-identical to what recovery will read back).
    fn push(&mut self, record: StoredRegion) -> Vec<u8> {
        let frame = record::encode_record(record.fingerprint, &record.interpretation);
        // A CRC collision between different records would leave the later
        // one unsummarized (it still serves locally; it just never gossips)
        // — `or_insert` keeps the digest an exact image of `by_sync_key`.
        self.by_sync_key
            .entry(record::sync_key_of(&frame))
            .or_insert(Slot::Live(self.records.len()));
        self.by_class
            .entry(record.interpretation.class)
            .or_default()
            .push(self.records.len());
        self.records.push(Some(record));
        self.live += 1;
        frame
    }

    /// The live records of one class, in admission order (suppressed
    /// slots skipped).
    fn class_records(&self, class: usize) -> impl Iterator<Item = &StoredRegion> {
        self.by_class
            .get(&class)
            .into_iter()
            .flatten()
            .filter_map(|&i| self.records[i].as_ref())
    }

    /// Everything durable, for compaction: live records then tombstones,
    /// each in admission order. (Tombstone-wins is order-independent, so
    /// any deterministic order is a faithful fold.)
    fn all_records(&self) -> Vec<StoreRecord> {
        let mut out: Vec<StoreRecord> = self
            .records
            .iter()
            .flatten()
            .cloned()
            .map(StoreRecord::Live)
            .collect();
        out.extend(self.tombstones.iter().copied().map(StoreRecord::Tombstone));
        out
    }
}

/// Work for the flusher thread. Channel order is durability order.
enum FlushMsg {
    /// One pre-encoded record frame to append.
    Append(Vec<u8>),
    /// Flush + fsync everything received so far, then ack.
    Barrier(mpsc::Sender<Result<(), String>>),
    /// Drain, final fsync, exit.
    Shutdown,
}

/// State shared between the store handle and its flusher thread.
#[derive(Debug)]
struct Shared {
    dir: PathBuf,
    config: StoreConfig,
    wal: Mutex<Wal>,
    index: RwLock<Index>,
    stats: StoreStats,
    /// Sealed segments currently on disk (gauge).
    segments: AtomicU64,
    /// Current WAL length in bytes (gauge), mirrored out of [`Wal::len`]
    /// after every append/reset so [`RegionStore::stats`] never has to
    /// queue behind the flusher's fsync or a running compaction.
    wal_bytes: AtomicU64,
    /// First WAL write/sync failure, sticky: once set, the flusher stops
    /// writing (records stay served from memory) and every later barrier —
    /// including the one inside [`RegionStore::close`] — reports it, so an
    /// accepted-but-lost append can never be silently acknowledged.
    wal_error: StickyError,
}

/// The durable log-structured region store (see the crate docs).
///
/// Thread-safe: lookups take a read lock, appends a short write lock plus
/// a channel send; all file I/O happens on the flusher thread (except
/// compaction, which the calling thread runs under the WAL lock).
/// Dropping the store drains and joins the flusher — every accepted
/// append is written and fsynced before the destructor returns, unless
/// the WAL has failed, in which case writing stopped at the first error.
/// Use [`RegionStore::close`] to observe that error: it is sticky, so it
/// reaches the final barrier even when the failing batch carried none.
#[derive(Debug)]
pub struct RegionStore {
    shared: Arc<Shared>,
    tx: mpsc::Sender<FlushMsg>,
    flusher: Option<JoinHandle<()>>,
}

impl RegionStore {
    /// Opens (or creates) a store under `dir`: replays sealed segments in
    /// sequence order, then the WAL's longest valid prefix (truncating any
    /// torn tail), deduplicates into the in-memory index, and starts the
    /// flusher. Auto-compacts when the recovered WAL exceeds
    /// [`StoreConfig::compact_wal_bytes`].
    ///
    /// # Errors
    /// [`StoreError`] on filesystem failures or foreign files in the
    /// directory (wrong magic — never clobbered).
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mut config = config;
        config.flush_batch = config.flush_batch.max(1);
        std::fs::create_dir_all(&dir)?;

        let stats = StoreStats::default();
        let mut index = Index::default();
        let segments = segment::list_segments(&dir)?;
        for (_, path) in &segments {
            let recovered = segment::read_segment(path)?;
            StoreStats::add(
                &stats.recovered_segment_records,
                recovered.records.len() as u64,
            );
            StoreStats::add(&stats.recovered_discarded_bytes, recovered.discarded_bytes);
            for r in recovered.records {
                // Already durable: the returned frame is not re-persisted.
                match r {
                    StoreRecord::Live(r) => {
                        let _ = index.admit(r, config.membership_rtol);
                    }
                    StoreRecord::Tombstone(t) => {
                        let _ = index.admit_tombstone(t);
                    }
                }
            }
        }
        let (wal, recovered) = Wal::open(&dir.join("wal.log"))?;
        StoreStats::add(&stats.recovered_wal_records, recovered.records.len() as u64);
        StoreStats::add(&stats.recovered_discarded_bytes, recovered.discarded_bytes);
        for r in recovered.records {
            // Already durable: the returned frame is not re-persisted.
            match r {
                StoreRecord::Live(r) => {
                    let _ = index.admit(r, config.membership_rtol);
                }
                StoreRecord::Tombstone(t) => {
                    let _ = index.admit_tombstone(t);
                }
            }
        }

        let wal_bytes = wal.len();
        let compact_now = wal_bytes >= config.compact_wal_bytes;
        let shared = Arc::new(Shared {
            dir,
            config,
            wal: Mutex::new(wal),
            index: RwLock::new(index),
            stats,
            segments: AtomicU64::new(segments.len() as u64),
            wal_bytes: AtomicU64::new(wal_bytes),
            wal_error: StickyError::new(),
        });
        let (tx, rx) = mpsc::channel();
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("openapi-store-flusher".into())
                .spawn(move || flusher_loop(&shared, &rx))?
        };
        let store = RegionStore {
            shared,
            tx,
            flusher: Some(flusher),
        };
        if compact_now {
            store.compact()?;
        }
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Borrow the (clamped) configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.shared.config
    }

    /// Distinct live regions the store holds (durable or queued durable;
    /// tombstone-suppressed regions are not counted).
    pub fn len(&self) -> usize {
        self.shared.index.read().live
    }

    /// Whether the store holds no live regions.
    pub fn is_empty(&self) -> bool {
        self.shared.index.read().live == 0
    }

    /// Distinct tombstoned `(class, fingerprint)` keys the store holds.
    pub fn tombstone_count(&self) -> usize {
        self.shared.index.read().tombstones.len()
    }

    /// A point-in-time statistics snapshot (counters + gauges).
    pub fn stats(&self) -> StoreStatsSnapshot {
        self.shared.stats.snapshot(
            self.len(),
            // ordering: Relaxed — gauges mirrored out of mutex-protected
            // state so a snapshot never queues behind an fsync; each load
            // is individually exact, cross-gauge tearing is accepted.
            // ordering: (same for both loads below)
            self.shared.wal_bytes.load(Ordering::Relaxed),
            self.shared.segments.load(Ordering::Relaxed) as usize,
        )
    }

    /// Black-box membership lookup, mirroring
    /// [`openapi_core::cache::RegionCache::lookup_probe`]: the first
    /// stored region of `class` whose core parameters explain the
    /// prediction `probs` observed at `x` (Theorem 2). The returned
    /// interpretation is an `Arc` share of the stored record — no payload
    /// copy.
    pub fn lookup_probe(&self, x: &Vector, probs: &[f64], class: usize) -> Option<StoredRegion> {
        StoreStats::add(&self.shared.stats.lookups, 1);
        let rtol = self.shared.config.membership_rtol;
        let index = self.shared.index.read();
        let hit = index
            .class_records(class)
            .find(|r| r.interpretation.explains_probe(x, probs, rtol))
            .cloned();
        if hit.is_some() {
            StoreStats::add(&self.shared.stats.hits, 1);
        }
        hit
    }

    /// Accepts a freshly solved region: deduplicates against the index
    /// (an already-stored region costs one map probe and no I/O), then
    /// queues the WAL append for the flusher. Returns whether the region
    /// was new.
    ///
    /// Appends are asynchronous: the record is immediately visible to
    /// [`RegionStore::lookup_probe`] but becomes durable at the flusher's
    /// next batched fsync. Use [`RegionStore::flush`] for a durability
    /// barrier.
    pub fn append(
        &self,
        fingerprint: RegionFingerprint,
        interpretation: Arc<Interpretation>,
    ) -> bool {
        let record = StoredRegion {
            fingerprint,
            interpretation,
        };
        let admitted = self
            .shared
            .index
            .write()
            .admit(record, self.shared.config.membership_rtol);
        let Some(frame) = admitted else {
            StoreStats::add(&self.shared.stats.duplicate_appends, 1);
            return false;
        };
        StoreStats::add(&self.shared.stats.appends, 1);
        // Attributes to the solving request's span when called from a
        // worker (the serving tier holds the span in its thread-local);
        // payload = encoded frame bytes queued for the flusher.
        openapi_trace::emit(Stage::WalAppend, frame.len() as u64);
        // A send failure means the flusher exited (shutdown race). Either
        // way the record stays served from memory; if the WAL ever failed,
        // the sticky `wal_error` surfaces through flush()/close().
        let _ = self.tx.send(FlushMsg::Append(frame));
        true
    }

    /// Tombstones a `(class, fingerprint)` key: every stored record under
    /// it stops serving immediately and for good — through compaction,
    /// restart, and anti-entropy exchange (the tombstone frame gossips
    /// like any record and wins the set-union). Returns whether the
    /// tombstone was new; re-tombstoning is an idempotent no-op.
    ///
    /// Like [`RegionStore::append`], durability is asynchronous: the
    /// suppression is immediate in memory, the WAL frame lands at the
    /// flusher's next batch ([`RegionStore::flush`] is the barrier).
    pub fn tombstone(&self, class: usize, fingerprint: RegionFingerprint) -> bool {
        let t = RegionTombstone { fingerprint, class };
        let admitted = self.shared.index.write().admit_tombstone(t);
        let Some(frame) = admitted else {
            return false;
        };
        StoreStats::add(&self.shared.stats.appends, 1);
        // Same accounting as a record append: the tombstone is one more
        // framed WAL write attributed to the invalidating request's span.
        openapi_trace::emit(Stage::WalAppend, frame.len() as u64);
        let _ = self.tx.send(FlushMsg::Append(frame));
        true
    }

    /// Whether `(class, fingerprint)` is tombstoned (permanently
    /// suppressed).
    pub fn contains_tombstone(&self, class: usize, fingerprint: RegionFingerprint) -> bool {
        self.shared
            .index
            .read()
            .tombstoned
            .contains(&(class, fingerprint.0))
    }

    /// A bucketed XOR/count digest of the store's record set, keyed by
    /// each record frame's CRC-64/XZ. Two stores whose digests are equal
    /// hold the same record set (w.h.p. — and membership re-verification
    /// on the serving path means a false match can only delay a gossip
    /// round, never corrupt an answer).
    pub fn digest(&self) -> StoreDigest {
        let index = self.shared.index.read();
        let mut digest = StoreDigest::default();
        for &key in index.by_sync_key.keys() {
            digest.add(key);
        }
        digest
    }

    /// Whether the store already holds the record whose frame CRC is
    /// `sync_key` (i.e. that exact record byte string).
    pub fn contains_record(&self, sync_key: u64) -> bool {
        self.shared.index.read().by_sync_key.contains_key(&sync_key)
    }

    /// Whether the store holds a canonical record under
    /// `(class, fingerprint)`. A collided (un-indexed) duplicate does not
    /// count — this answers "is the fingerprint key taken", mirroring the
    /// cache's keying.
    pub fn contains_fingerprint(&self, class: usize, fingerprint: RegionFingerprint) -> bool {
        self.shared
            .index
            .read()
            .by_key
            .contains_key(&(class, fingerprint.0))
    }

    /// Every record's sync key, sorted (a stable iteration surface for
    /// tests and debugging; the digest is the compact form).
    pub fn record_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .shared
            .index
            .read()
            .by_sync_key
            .keys()
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The sync keys that hash into any of `buckets`, sorted — what a
    /// puller sends alongside a pull so the peer ships only records the
    /// puller is actually missing.
    pub fn keys_in_buckets(&self, buckets: &[u32]) -> Vec<u64> {
        let wanted: HashSet<u32> = buckets.iter().copied().collect();
        let mut keys: Vec<u64> = self
            .shared
            .index
            .read()
            .by_sync_key
            .keys()
            .copied()
            .filter(|&k| wanted.contains(&(StoreDigest::bucket_of(k) as u32)))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The delta a peer needs: the encoded frames of every record —
    /// live or tombstone — in `buckets` whose sync key is not in `have`,
    /// concatenated, capped at roughly `max_bytes` (at least one record
    /// always ships, even a lone tombstone, so a pull loop makes
    /// progress). Frames are re-encoded from the index — the codec is
    /// deterministic, so they are byte-identical to this store's own
    /// on-disk records.
    pub fn sync_delta(&self, buckets: &[u32], have: &[u64], max_bytes: usize) -> SyncDelta {
        let wanted: HashSet<u32> = buckets.iter().copied().collect();
        let have: HashSet<u64> = have.iter().copied().collect();
        let index = self.shared.index.read();
        let mut missing: Vec<(u64, Slot)> = index
            .by_sync_key
            .iter()
            .filter(|&(&k, _)| {
                wanted.contains(&(StoreDigest::bucket_of(k) as u32)) && !have.contains(&k)
            })
            .map(|(&k, &slot)| (k, slot))
            .collect();
        // Deterministic delta order regardless of hash-map iteration.
        missing.sort_unstable_by_key(|&(k, _)| k);
        let mut delta = SyncDelta::default();
        for (_, slot) in missing {
            let frame = match slot {
                Slot::Live(i) => {
                    let r = index.records[i]
                        .as_ref()
                        .expect("live sync keys point at live slots");
                    record::encode_record(r.fingerprint, &r.interpretation)
                }
                Slot::Tombstone(i) => record::encode_tombstone(index.tombstones[i]),
            };
            if delta.records > 0 && delta.frames.len() + frame.len() > max_bytes {
                delta.truncated = true;
                break;
            }
            delta.frames.extend_from_slice(&frame);
            delta.records += 1;
        }
        delta
    }

    /// Durability barrier: blocks until every append accepted before this
    /// call is written to the WAL and fsynced.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the flusher reports a write/sync failure —
    /// the first failure is sticky, so once any accepted append has been
    /// dropped, every later barrier (including the one in
    /// [`RegionStore::close`]) fails rather than acking lost data.
    pub fn flush(&self) -> Result<(), StoreError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(FlushMsg::Barrier(ack_tx)).is_err() {
            return Err(std::io::Error::other("store flusher is gone").into());
        }
        match ack_rx.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(msg)) => Err(std::io::Error::other(msg).into()),
            Err(_) => Err(std::io::Error::other("store flusher died mid-flush").into()),
        }
    }

    /// Folds everything the store holds into one fresh sealed segment,
    /// then empties the WAL and removes the older segments. Crash-safe at
    /// every step: the new segment is tmp-written, fsynced, and renamed
    /// into place *before* any old data is dropped, so every record is in
    /// at least one durable file at every instant (worst case it is in
    /// two, and recovery's dedup folds the copies). Returns the records
    /// sealed.
    ///
    /// # Errors
    /// [`StoreError::Io`] from any filesystem step.
    pub fn compact(&self) -> Result<usize, StoreError> {
        self.shared.compact()
    }

    /// Graceful shutdown: durability barrier, then drains and joins the
    /// flusher. The `Drop` impl does the same minus error reporting, so
    /// `close` is for callers that must *observe* flush failures.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the final flush fails.
    pub fn close(mut self) -> Result<(), StoreError> {
        let result = self.flush();
        let _ = self.tx.send(FlushMsg::Shutdown);
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        result
    }
}

impl Drop for RegionStore {
    fn drop(&mut self) {
        let _ = self.tx.send(FlushMsg::Shutdown);
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

impl Shared {
    /// The compaction pass behind [`RegionStore::compact`] — on `Shared`
    /// so the flusher thread can run it too (see
    /// [`StoreConfig::auto_compact_bytes`]).
    fn compact(&self) -> Result<usize, StoreError> {
        // Hold the WAL lock across the whole pass: the flusher cannot
        // interleave a write between the index snapshot and the WAL reset,
        // so a record admitted concurrently is either in our snapshot
        // (sealed) or its WAL write lands after the reset (kept) — never
        // silently dropped.
        let mut wal = self.wal.lock();
        // Live records plus tombstones: a compacted store genuinely
        // forgets suppressed regions (their frames are dropped) while the
        // "forget" facts themselves stay durable.
        let records: Vec<StoreRecord> = self.index.read().all_records();
        let old_segments = segment::list_segments(&self.dir)?;
        let id = old_segments.last().map_or(1, |(last, _)| last + 1);
        segment::write_segment(&self.dir, id, &records)?;
        wal.reset()?;
        // ordering: Relaxed — stats gauges (see `RegionStore::stats`); the
        // WAL mutex held across the pass orders the underlying state.
        self.wal_bytes.store(wal.len(), Ordering::Relaxed);
        for (_, path) in &old_segments {
            std::fs::remove_file(path)?;
        }
        sync_dir(&self.dir);
        // ordering: Relaxed — gauge, as above.
        self.segments.store(1, Ordering::Relaxed);
        StoreStats::add(&self.stats.compactions, 1);
        Ok(records.len())
    }
}

/// The flusher: drains the channel in batches, appends to the WAL, and
/// fsyncs once per batch. Channel FIFO order means a barrier acks only
/// after every append accepted before it is durable.
fn flusher_loop(shared: &Shared, rx: &mpsc::Receiver<FlushMsg>) {
    let mut stop = false;
    while !stop {
        let Ok(first) = rx.recv() else { break };
        let mut pending: Vec<Vec<u8>> = Vec::new();
        let mut barriers: Vec<mpsc::Sender<Result<(), String>>> = Vec::new();
        match first {
            FlushMsg::Append(frame) => pending.push(frame),
            FlushMsg::Barrier(ack) => barriers.push(ack),
            FlushMsg::Shutdown => stop = true,
        }
        while pending.len() < shared.config.flush_batch && !stop {
            match rx.try_recv() {
                Ok(FlushMsg::Append(frame)) => pending.push(frame),
                Ok(FlushMsg::Barrier(ack)) => barriers.push(ack),
                Ok(FlushMsg::Shutdown) => stop = true,
                Err(_) => break,
            }
        }
        if !pending.is_empty() || !barriers.is_empty() {
            // A failed WAL is failed for good: stop writing (Wal::append
            // already rolled the file back to its last good boundary, but
            // a device that errored once gives no durability promises) and
            // report the original failure to every later barrier instead
            // of acking batches that were silently dropped.
            let mut error = shared.wal_error.get();
            if error.is_none() && !pending.is_empty() {
                let mut wal = shared.wal.lock();
                let result = wal.append(&pending).and_then(|_| wal.sync());
                // ordering: Relaxed — a stats gauge; the authoritative
                // value lives in `wal` under its mutex (see `Shared`).
                shared.wal_bytes.store(wal.len(), Ordering::Relaxed);
                drop(wal);
                match result {
                    Ok(()) => {
                        StoreStats::add(&shared.stats.flushed_records, pending.len() as u64);
                        StoreStats::add(&shared.stats.fsyncs, 1);
                        // A process-level event (the batched fsync serves
                        // many requests), so it carries the detached span;
                        // payload = records made durable by this sync.
                        RequestSpan::detached().event(Stage::Fsync, pending.len() as u64);
                    }
                    Err(e) => {
                        let msg = e.to_string();
                        shared.wal_error.record(msg.clone());
                        error = Some(msg);
                    }
                }
            }
            for ack in barriers {
                let _ = ack.send(match &error {
                    None => Ok(()),
                    Some(msg) => Err(msg.clone()),
                });
            }
            // Background compaction: once the live WAL crosses the
            // threshold, fold it into a sealed segment right here on the
            // flusher — after the barriers acked, so durability waiters
            // never queue behind a compaction pass. A failure is NOT a
            // WAL error (every record is still durable in the WAL); the
            // pass simply retries at the next batch.
            // ordering: Relaxed — a threshold probe on the gauge; the
            // compaction itself re-reads the WAL under its mutex.
            if error.is_none()
                && shared.wal_bytes.load(Ordering::Relaxed) >= shared.config.auto_compact_bytes
            {
                let _ = shared.compact();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{consistent_probs, region, temp_dir};

    fn open(dir: &Path) -> RegionStore {
        RegionStore::open(dir, StoreConfig::default()).unwrap()
    }

    #[test]
    fn appends_survive_a_clean_close_and_reopen() {
        let dir = temp_dir("store_reopen");
        let store = open(&dir);
        let a = region(0, &[1.0, -0.5], 0.25);
        let b = region(1, &[2.0, 0.5], -0.75);
        assert!(store.append(a.fingerprint, Arc::clone(&a.interpretation)));
        assert!(store.append(b.fingerprint, Arc::clone(&b.interpretation)));
        assert!(
            !store.append(a.fingerprint, Arc::clone(&a.interpretation)),
            "duplicate append must be a no-op"
        );
        assert_eq!(store.len(), 2);
        store.close().unwrap();

        let store = open(&dir);
        assert_eq!(store.len(), 2);
        let stats = store.stats();
        assert_eq!(stats.recovered_wal_records, 2);
        assert_eq!(stats.recovered_discarded_bytes, 0);
        // The recovered records serve probes exactly.
        let x = Vector(vec![0.3, -0.2]);
        let probs = consistent_probs(&a.interpretation, &x);
        let hit = store.lookup_probe(&x, &probs, 0).expect("region stored");
        assert_eq!(hit.interpretation, a.interpretation);
        assert!(store.lookup_probe(&x, &[0.5, 0.5], 0).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_without_close_still_flushes() {
        let dir = temp_dir("store_drop");
        let store = open(&dir);
        let a = region(0, &[3.0], 0.0);
        store.append(a.fingerprint, Arc::clone(&a.interpretation));
        drop(store);
        let store = open(&dir);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_folds_the_wal_into_one_segment() {
        let dir = temp_dir("store_compact");
        let store = open(&dir);
        let regions: Vec<_> = (0..10).map(|i| region(0, &[i as f64 + 0.5], 0.0)).collect();
        for r in &regions {
            store.append(r.fingerprint, Arc::clone(&r.interpretation));
        }
        store.flush().unwrap();
        assert!(store.stats().wal_bytes > crate::wal::WAL_HEADER);
        assert_eq!(store.compact().unwrap(), 10);
        let stats = store.stats();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.wal_bytes, crate::wal::WAL_HEADER, "WAL emptied");
        assert_eq!(stats.compactions, 1);
        store.close().unwrap();

        // Recovery now comes entirely from the segment.
        let store = open(&dir);
        assert_eq!(store.len(), 10);
        let stats = store.stats();
        assert_eq!(stats.recovered_segment_records, 10);
        assert_eq!(stats.recovered_wal_records, 0);

        // Appends after compaction land in the WAL and coexist.
        let extra = region(1, &[99.0], 1.0);
        store.append(extra.fingerprint, Arc::clone(&extra.interpretation));
        store.close().unwrap();
        let store = open(&dir);
        assert_eq!(store.len(), 11);
        // A second compaction supersedes the first segment.
        store.compact().unwrap();
        assert_eq!(segment::list_segments(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_recovers_the_valid_prefix() {
        let dir = temp_dir("store_torn");
        let store = open(&dir);
        let keep = region(0, &[1.0], 0.0);
        let lost = region(0, &[2.0], 0.0);
        store.append(keep.fingerprint, Arc::clone(&keep.interpretation));
        store.append(lost.fingerprint, Arc::clone(&lost.interpretation));
        store.close().unwrap();
        // Tear mid-way into the second record.
        let wal = dir.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(len - 7)
            .unwrap();
        let store = open(&dir);
        assert_eq!(store.len(), 1);
        let stats = store.stats();
        assert_eq!(stats.recovered_wal_records, 1);
        assert!(stats.recovered_discarded_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compaction_triggers_on_a_large_wal() {
        let dir = temp_dir("store_autocompact");
        let config = StoreConfig {
            compact_wal_bytes: 64,
            ..StoreConfig::default()
        };
        let store = RegionStore::open(&dir, config.clone()).unwrap();
        for i in 0..8 {
            let r = region(0, &[i as f64 + 0.25], 0.0);
            store.append(r.fingerprint, Arc::clone(&r.interpretation));
        }
        store.close().unwrap();
        // Reopen past the threshold: the WAL folds into a segment.
        let store = RegionStore::open(&dir, config).unwrap();
        let stats = store.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.wal_bytes, crate::wal::WAL_HEADER);
        assert_eq!(store.len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flusher_auto_compacts_past_the_live_threshold() {
        let dir = temp_dir("store_live_autocompact");
        let store = RegionStore::open(
            &dir,
            StoreConfig {
                // Wide weights make every record frame larger than the
                // threshold, so whichever way the flusher batches the
                // appends, the batch that lands last also compacts last.
                auto_compact_bytes: 64,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let weights: Vec<f64> = (0..32).map(|j| j as f64 * 0.1 - 1.5).collect();
        for i in 0..8 {
            let mut w = weights.clone();
            w[0] += i as f64;
            let r = region(0, &w, 0.0);
            store.append(r.fingerprint, Arc::clone(&r.interpretation));
        }
        store.flush().unwrap();
        // The compaction runs on the flusher right after the barrier acks;
        // wait for it to land.
        let deadline = openapi_trace::clock::now() + std::time::Duration::from_secs(30);
        loop {
            let stats = store.stats();
            if stats.compactions >= 1 && stats.wal_bytes == crate::wal::WAL_HEADER {
                assert_eq!(stats.segments, 1);
                break;
            }
            assert!(
                openapi_trace::clock::now() < deadline,
                "flusher never compacted the live WAL"
            );
            std::thread::yield_now();
        }
        assert_eq!(store.len(), 8);
        // Everything survives a reopen from the sealed segment (plus any
        // later appends from the fresh WAL).
        let extra = region(1, &[42.0], 0.5);
        store.append(extra.fingerprint, Arc::clone(&extra.interpretation));
        store.close().unwrap();
        let store = open(&dir);
        assert_eq!(store.len(), 9);
        assert!(store.stats().recovered_segment_records >= 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_appends_and_lookups_stay_consistent() {
        let dir = temp_dir("store_concurrent");
        let store = open(&dir);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..25 {
                        let r = region(0, &[(t * 25 + i) as f64 + 0.5], 0.0);
                        store.append(r.fingerprint, Arc::clone(&r.interpretation));
                    }
                });
            }
            for _ in 0..2 {
                let store = &store;
                scope.spawn(move || {
                    let x = Vector(vec![0.4]);
                    for i in 0..100 {
                        let target = region(0, &[i as f64 + 0.5], 0.0);
                        let probs = consistent_probs(&target.interpretation, &x);
                        if let Some(hit) = store.lookup_probe(&x, &probs, 0) {
                            // Any hit is the queried region, never another.
                            assert_eq!(hit.interpretation, target.interpretation);
                        }
                    }
                });
            }
        });
        assert_eq!(store.len(), 100);
        store.close().unwrap();
        let store = open(&dir);
        assert_eq!(store.len(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_is_idempotent_and_sync_surfaces_reflect_the_set() {
        let dir = temp_dir("store_sync_surface");
        let store = open(&dir);
        let a = region(0, &[1.0, -0.5], 0.25);
        let b = region(1, &[2.0, 0.5], -0.75);
        assert!(store.append(a.fingerprint, Arc::clone(&a.interpretation)));
        assert!(store.append(b.fingerprint, Arc::clone(&b.interpretation)));
        // Idempotent: re-appending changes nothing observable.
        for _ in 0..3 {
            assert!(!store.append(a.fingerprint, Arc::clone(&a.interpretation)));
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().duplicate_appends, 3);

        let keys = store.record_keys();
        assert_eq!(keys.len(), 2);
        let frame_a = record::encode_record(a.fingerprint, &a.interpretation);
        let key_a = u64::from_le_bytes(frame_a[4..12].try_into().unwrap());
        assert!(keys.contains(&key_a));
        assert!(store.contains_record(key_a));
        assert!(!store.contains_record(key_a ^ 1));
        assert!(store.contains_fingerprint(0, a.fingerprint));
        assert!(!store.contains_fingerprint(5, a.fingerprint));

        // The digest summarizes exactly the key set, and the duplicate
        // appends above never inflated it.
        let digest = store.digest();
        assert_eq!(digest.total(), 2);
        let mut expect = StoreDigest::default();
        for &k in &keys {
            expect.add(k);
        }
        assert_eq!(digest, expect);
        store.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_delta_ships_exact_frames_and_respects_the_cap() {
        let dir = temp_dir("store_sync_delta");
        let store = open(&dir);
        let regions: Vec<_> = (0..6).map(|i| region(0, &[i as f64 + 0.5], 0.0)).collect();
        for r in &regions {
            store.append(r.fingerprint, Arc::clone(&r.interpretation));
        }
        let all_buckets: Vec<u32> = (0..crate::sync::DIGEST_BUCKETS as u32).collect();

        // A peer holding nothing gets every record, as exact frames.
        let delta = store.sync_delta(&all_buckets, &[], usize::MAX);
        assert_eq!(delta.records, 6);
        assert!(!delta.truncated);
        let mut slice = delta.frames.as_slice();
        let mut decoded = 0;
        while !slice.is_empty() {
            let rec = record::get_record(&mut slice).unwrap();
            assert!(
                store.contains_fingerprint(rec.interpretation.class, rec.fingerprint),
                "delta record must come from the store"
            );
            decoded += 1;
        }
        assert_eq!(decoded, 6);

        // A peer that already has everything gets an empty delta.
        let have = store.record_keys();
        let none = store.sync_delta(&all_buckets, &have, usize::MAX);
        assert_eq!(none.records, 0);
        assert!(!none.truncated);

        // A tight cap still ships at least one record and flags the rest.
        let tiny = store.sync_delta(&all_buckets, &[], 1);
        assert_eq!(tiny.records, 1);
        assert!(tiny.truncated);

        // Pull-looping to completion over the capped path converges on
        // the identical byte set as the uncapped pull.
        let mut have: Vec<u64> = Vec::new();
        let mut gathered = Vec::new();
        loop {
            let step = store.sync_delta(&all_buckets, &have, 64);
            if step.records == 0 {
                break;
            }
            let mut slice = step.frames.as_slice();
            while !slice.is_empty() {
                let start = slice;
                let _ = record::get_record(&mut slice).unwrap();
                let frame = &start[..start.len() - slice.len()];
                have.push(u64::from_le_bytes(frame[4..12].try_into().unwrap()));
                gathered.extend_from_slice(frame);
            }
            if !step.truncated {
                break;
            }
        }
        have.sort_unstable();
        assert_eq!(have, store.record_keys());
        assert_eq!(gathered, delta.frames, "same bytes, any pull schedule");
        store.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstones_suppress_serving_through_restart_and_compaction() {
        let dir = temp_dir("store_tombstone");
        let store = open(&dir);
        let a = region(0, &[1.0, -0.5], 0.25);
        let b = region(1, &[2.0, 0.5], -0.75);
        assert!(store.append(a.fingerprint, Arc::clone(&a.interpretation)));
        assert!(store.append(b.fingerprint, Arc::clone(&b.interpretation)));
        let x = Vector(vec![0.3, -0.2]);
        let probs = consistent_probs(&a.interpretation, &x);
        assert!(store.lookup_probe(&x, &probs, 0).is_some());

        assert!(store.tombstone(0, a.fingerprint));
        assert!(!store.tombstone(0, a.fingerprint), "idempotent");
        assert!(store.lookup_probe(&x, &probs, 0).is_none(), "suppressed");
        assert!(store.contains_tombstone(0, a.fingerprint));
        assert!(!store.contains_fingerprint(0, a.fingerprint));
        assert_eq!(store.len(), 1);
        assert_eq!(store.tombstone_count(), 1);
        // Tombstone-wins is permanent: the same key never re-enters.
        assert!(!store.append(a.fingerprint, Arc::clone(&a.interpretation)));
        // The untouched region still serves.
        let probs_b = consistent_probs(&b.interpretation, &x);
        assert!(store.lookup_probe(&x, &probs_b, 1).is_some());
        store.close().unwrap();

        // Restart: the WAL replays the tombstone after the record.
        let store = open(&dir);
        assert_eq!(store.len(), 1);
        assert_eq!(store.tombstone_count(), 1);
        assert!(store.lookup_probe(&x, &probs, 0).is_none());
        assert!(!store.append(a.fingerprint, Arc::clone(&a.interpretation)));
        // Compaction folds the suppressed record away but keeps the fact.
        assert_eq!(store.compact().unwrap(), 2, "one live + one tombstone");
        store.close().unwrap();

        // Restart from the compacted segment: still forgotten.
        let store = open(&dir);
        assert_eq!(store.len(), 1);
        assert_eq!(store.tombstone_count(), 1);
        assert!(store.lookup_probe(&x, &probs, 0).is_none());
        assert!(store.contains_tombstone(0, a.fingerprint));
        assert_eq!(store.stats().recovered_segment_records, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digests_converge_after_both_stores_tombstone_the_same_key() {
        // Regression for the anti-entropy livelock: suppressing a record
        // must remove its sync key from the digest, or two stores that
        // both tombstoned the same region would disagree forever.
        let dir_a = temp_dir("store_ts_digest_a");
        let dir_b = temp_dir("store_ts_digest_b");
        let sa = open(&dir_a);
        let sb = open(&dir_b);
        let regions: Vec<_> = (0..4).map(|i| region(0, &[i as f64 + 0.5], 0.0)).collect();
        for r in &regions {
            sa.append(r.fingerprint, Arc::clone(&r.interpretation));
        }
        // Opposite admission order on the peer.
        for r in regions.iter().rev() {
            sb.append(r.fingerprint, Arc::clone(&r.interpretation));
        }
        let victim = &regions[1];
        assert!(sa.tombstone(0, victim.fingerprint));
        assert!(sb.tombstone(0, victim.fingerprint));
        assert_eq!(sa.record_keys(), sb.record_keys());
        assert_eq!(sa.digest(), sb.digest());
        assert!(sa.digest().differing_buckets(&sb.digest()).is_empty());
        // The tombstone frame itself is summarized (3 live + 1 tombstone).
        assert_eq!(sa.digest().total(), 4);
        sa.close().unwrap();
        sb.close().unwrap();
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn a_lone_tombstone_ships_through_sync_delta() {
        // The ≥1-record progress guarantee covers tombstone-only deltas.
        let dir = temp_dir("store_ts_delta");
        let store = open(&dir);
        let a = region(0, &[1.0], 0.0);
        store.append(a.fingerprint, Arc::clone(&a.interpretation));
        store.tombstone(0, a.fingerprint);
        let all_buckets: Vec<u32> = (0..crate::sync::DIGEST_BUCKETS as u32).collect();
        let delta = store.sync_delta(&all_buckets, &[], 1);
        assert_eq!(delta.records, 1);
        assert!(!delta.truncated);
        let mut slice = delta.frames.as_slice();
        match record::get_any_record(&mut slice).unwrap() {
            StoreRecord::Tombstone(t) => {
                assert_eq!(t.fingerprint, a.fingerprint);
                assert_eq!(t.class, 0);
            }
            other => panic!("expected a tombstone frame, got {other:?}"),
        }
        assert!(slice.is_empty());
        // The live-only wire decoder refuses the same frame, typed.
        let mut slice = delta.frames.as_slice();
        assert!(matches!(
            record::get_record(&mut slice),
            Err(crate::record::RecordError::UnexpectedTombstone(_))
        ));
        store.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_collisions_keep_both_regions() {
        let dir = temp_dir("store_collision");
        let store = open(&dir);
        let a = region(0, &[1.0], 0.0);
        // Same fingerprint key, genuinely different parameters.
        let b = StoredRegion {
            fingerprint: a.fingerprint,
            interpretation: region(0, &[5.0], 1.0).interpretation,
        };
        assert!(store.append(a.fingerprint, Arc::clone(&a.interpretation)));
        assert!(store.append(b.fingerprint, Arc::clone(&b.interpretation)));
        assert!(!store.append(b.fingerprint, Arc::clone(&b.interpretation)));
        assert_eq!(store.len(), 2);
        // Both are served by membership, and reopen preserves both.
        store.close().unwrap();
        let store = open(&dir);
        assert_eq!(store.len(), 2);
        let x = Vector(vec![0.7]);
        let probs = consistent_probs(&b.interpretation, &x);
        let hit = store.lookup_probe(&x, &probs, 0).expect("collided region");
        assert_eq!(hit.interpretation, b.interpretation);
        std::fs::remove_dir_all(&dir).ok();
    }
}
