//! `openapi-net` — the wire tier: exact interpretations served over TCP.
//!
//! PRs 2–4 built the in-process stack that makes the paper's closed form
//! cheap to serve — the Theorem-2 region cache, the concurrent
//! [`openapi_serve::InterpretationService`], and the durable
//! `openapi-store` region store. This crate puts a network boundary in
//! front of it, because the deployment the paper describes (a model
//! *hidden behind an API*, interrogated on behalf of many users) makes
//! interpretation itself a service: one process pays each region's
//! Algorithm-1 solve once, and every client of that process — not just
//! every thread — shares the result.
//!
//! Three layers, one per module:
//!
//! * [`wire`] — the protocol: a magic + version hello (the server's reply
//!   also declares its hidden model's shape and identity, so clients and
//!   anti-entropy peers fail fast at connect), then CRC-64/XZ framed
//!   request/response records (`Interpret`, `InterpretBatch`, `Stats`,
//!   `Ping`, and the `SyncDigest`/`SyncPull` anti-entropy pair) in the
//!   exact framing `openapi-store` uses on disk. Byte-for-byte spec in
//!   `docs/PROTOCOL.md`; hostile bytes decode to typed [`WireError`]s,
//!   never panics.
//! * [`server`] — [`Server`]: a threaded acceptor over an
//!   [`openapi_serve::InterpretationService`]. Each connection gets a
//!   reader and a writer thread around a bounded in-flight queue; past the
//!   bound the server answers a typed `Busy` (backpressure, not queueing
//!   collapse). Responses are written in request order, deadlines ride the
//!   requests, and [`Server::close`] drains every in-flight ticket before
//!   closing the store.
//! * [`client`] — [`Client`]: blocking calls over one reused connection,
//!   with every failure a typed [`ClientError`].
//!
//! # Example
//!
//! A server over a (here: in-process) linear softmax model, and a client
//! interpreting a prediction through it:
//!
//! ```
//! use openapi_api::LinearSoftmaxModel;
//! use openapi_linalg::{Matrix, Vector};
//! use openapi_net::{Client, Server, ServerConfig};
//! use openapi_serve::{InterpretationService, ServiceConfig};
//!
//! // The hidden model: d = 4, C = 3. In deployment this is somebody
//! // else's model behind a prediction API.
//! let model = LinearSoftmaxModel::new(
//!     Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) % 5) as f64 * 0.25 - 0.5),
//!     Vector(vec![0.1, -0.2, 0.05]),
//! );
//! let service = InterpretationService::new(model, ServiceConfig::default());
//! let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ping().unwrap();
//! let x = Vector(vec![0.3, -0.1, 0.7, 0.2]);
//! let served = client.interpret(&x, 1).unwrap();
//! // The served parameters are exact: they explain the model's own
//! // prediction at x (Theorem 2's membership identity).
//! assert_eq!(served.interpretation.class, 1);
//! assert_eq!(served.interpretation.decision_features.len(), 4);
//! server.close().unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod client;
pub mod server;
pub mod wire;

pub use budget::ConnBudget;
pub use client::{Client, ClientError};
pub use server::{Server, ServerConfig};
pub use wire::{
    ErrorCode, ModelInfo, RemoteError, RemoteServed, Request, Response, WireError, VERSION,
};
