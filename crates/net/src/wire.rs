//! The wire protocol: handshake, message codec, and stream framing.
//!
//! Everything on the wire reuses the `openapi-store` record-codec
//! discipline — little-endian fields behind `openapi_linalg::codec`
//! length prefixes, inside `len + CRC-64/XZ` frames
//! ([`openapi_store::record::put_frame`]) — so the workspace keeps exactly
//! one binary framing to audit, on disk and on the wire alike. The
//! byte-for-byte specification lives in `docs/PROTOCOL.md`; this module is
//! its executable form.
//!
//! A connection starts with a fixed-size hello in each direction: the
//! client sends magic + version ([`encode_hello`]/[`decode_hello`]); the
//! server answers with magic + version + the hidden model's shape and
//! identity ([`encode_server_hello`]/[`decode_server_hello`]), so clients
//! *and* anti-entropy peers fail fast at connect instead of on their
//! first mismatched request. Every subsequent message is one frame whose
//! payload begins with a one-byte tag ([`Request`] tags in `0x01..=0x07`,
//! [`Response`] tags in `0x81..=0x87` plus [`TAG_ERROR`]). Decoding never
//! panics on hostile bytes: every failure is a typed [`WireError`].

use bytes::{Buf, BufMut};
use openapi_core::decision::{Interpretation, RegionFingerprint};
use openapi_linalg::codec::{self, CodecError};
use openapi_linalg::Vector;
use openapi_metrics::LATENCY_BUCKETS;
use openapi_serve::{DriftStatsSnapshot, FabricStatsSnapshot, ServeOutcome, StatsSnapshot, STAGES};
use openapi_store::record::{self, RecordError};
use openapi_store::{DigestBucket, StoreDigest, StoreStatsSnapshot, SyncDelta, DIGEST_BUCKETS};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Magic bytes opening every connection, in both directions.
pub const MAGIC: [u8; 8] = *b"OAPINET\0";

/// The one protocol version this build speaks. Version 2 added the
/// model-describing server hello and the anti-entropy sync messages.
pub const VERSION: u32 = 2;

/// Byte length of a client hello (magic + `u32` version).
pub const HELLO_LEN: usize = 12;

/// Byte length of a server hello (magic + `u32` version + `u32` dim +
/// `u32` num_classes + `u64` model id).
pub const SERVER_HELLO_LEN: usize = 28;

/// Most items accepted in one `InterpretBatch` request. Bounds the work a
/// single frame can enqueue (the frame length itself is already bounded by
/// [`openapi_store::record::MAX_PAYLOAD`]).
pub const MAX_BATCH: usize = 1024;

/// Request tag: [`Request::Ping`].
pub const TAG_PING: u8 = 0x01;
/// Request tag: [`Request::Interpret`].
pub const TAG_INTERPRET: u8 = 0x02;
/// Request tag: [`Request::InterpretBatch`].
pub const TAG_INTERPRET_BATCH: u8 = 0x03;
/// Request tag: [`Request::Stats`].
pub const TAG_STATS: u8 = 0x04;
/// Request tag: [`Request::Metrics`].
pub const TAG_METRICS: u8 = 0x05;
/// Request tag: [`Request::SyncDigest`].
pub const TAG_SYNC_DIGEST: u8 = 0x06;
/// Request tag: [`Request::SyncPull`].
pub const TAG_SYNC_PULL: u8 = 0x07;
/// Response tag: [`Response::Pong`].
pub const TAG_PONG: u8 = 0x81;
/// Response tag: [`Response::Interpreted`].
pub const TAG_INTERPRETED: u8 = 0x82;
/// Response tag: [`Response::Batch`].
pub const TAG_BATCH: u8 = 0x83;
/// Response tag: [`Response::StatsReply`].
pub const TAG_STATS_REPLY: u8 = 0x84;
/// Response tag: [`Response::MetricsReply`].
pub const TAG_METRICS_REPLY: u8 = 0x85;
/// Response tag: [`Response::SyncDigestReply`].
pub const TAG_SYNC_DIGEST_REPLY: u8 = 0x86;
/// Response tag: [`Response::SyncPullReply`].
pub const TAG_SYNC_PULL_REPLY: u8 = 0x87;
/// Response tag: [`Response::Error`].
pub const TAG_ERROR: u8 = 0xEE;

/// Why decoding wire bytes failed. Every variant is a *typed* refusal —
/// hostile or truncated input can produce any of these, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The frame itself is bad: truncated, implausible length, or a
    /// CRC-64/XZ mismatch (carries the store codec's own error).
    Record(RecordError),
    /// A message body field failed to decode.
    Codec(CodecError),
    /// The payload's leading tag byte names no known message.
    BadTag {
        /// The offending tag.
        tag: u8,
    },
    /// A field decoded but holds a value outside its domain (an unknown
    /// outcome or error code, a flag byte that is neither 0 nor 1).
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The message decoded completely but bytes remain in the frame.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// The hello's magic bytes are wrong — the peer is not speaking this
    /// protocol at all.
    BadMagic {
        /// The eight bytes found where [`MAGIC`] was expected.
        found: [u8; 8],
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Record(e) => write!(f, "wire frame: {e}"),
            WireError::Codec(e) => write!(f, "wire field: {e}"),
            WireError::BadTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            WireError::BadValue { what, value } => {
                write!(f, "{what}: value {value} out of domain")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad protocol magic {found:02x?}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<RecordError> for WireError {
    fn from(e: RecordError) -> Self {
        WireError::Record(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Typed error codes a server can answer with (the `code` field of
/// [`RemoteError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The client's hello named a protocol version this server does not
    /// speak; the connection is closed after this reply.
    UnsupportedVersion,
    /// The request could not be decoded. When the *frame* was corrupt the
    /// stream has lost sync and the server closes the connection; when the
    /// frame was intact but its payload was malformed, the connection
    /// stays usable.
    Malformed,
    /// The connection's bounded in-flight queue is full — backpressure.
    /// Retry after draining some responses.
    Busy,
    /// The request's deadline passed before it completed.
    DeadlineExceeded,
    /// The interpretation itself failed (bad arguments, budget
    /// exhaustion); the message carries the interpreter's diagnostics.
    Interpret,
    /// The server is shutting down; the request was not served.
    Stopped,
    /// The peer's declared model shape/identity does not match this
    /// server's hidden model; syncing their region stores would merge
    /// interpretations of different functions, so the request is refused.
    ModelMismatch,
    /// The request needs a durable region store, but this server runs
    /// without one (in-memory cache only).
    NoStore,
}

impl ErrorCode {
    /// The code's `u16` wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::UnsupportedVersion => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::Busy => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Interpret => 5,
            ErrorCode::Stopped => 6,
            ErrorCode::ModelMismatch => 7,
            ErrorCode::NoStore => 8,
        }
    }

    /// Parses a wire value back into a code.
    pub fn from_u16(value: u16) -> Option<ErrorCode> {
        match value {
            1 => Some(ErrorCode::UnsupportedVersion),
            2 => Some(ErrorCode::Malformed),
            3 => Some(ErrorCode::Busy),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::Interpret),
            6 => Some(ErrorCode::Stopped),
            7 => Some(ErrorCode::ModelMismatch),
            8 => Some(ErrorCode::NoStore),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::UnsupportedVersion => "unsupported version",
            ErrorCode::Malformed => "malformed request",
            ErrorCode::Busy => "busy",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::Interpret => "interpretation failed",
            ErrorCode::Stopped => "server stopped",
            ErrorCode::ModelMismatch => "model mismatch",
            ErrorCode::NoStore => "no durable store",
        };
        f.write_str(name)
    }
}

/// A typed error a server answered with.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteError {
    /// What went wrong, as a stable code.
    pub code: ErrorCode,
    /// Human-readable diagnostics (e.g. the interpreter's own error text).
    pub message: String,
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.message.is_empty() {
            write!(f, "{}", self.code)
        } else {
            write!(f, "{}: {}", self.code, self.message)
        }
    }
}

impl std::error::Error for RemoteError {}

/// A completed interpretation as served over the wire — the remote
/// counterpart of [`openapi_serve::Served`].
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteServed {
    /// The region's exact interpretation (bit-identical for every request
    /// the server resolved to the same region).
    pub interpretation: Arc<Interpretation>,
    /// Canonical key of the serving region.
    pub fingerprint: RegionFingerprint,
    /// How the server satisfied the request (cache/store/solve/coalesce).
    pub outcome: ServeOutcome,
    /// Prediction queries the server spent on behalf of this request.
    pub queries: usize,
    /// Server-side latency (submit → completion inside the service; wire
    /// time excluded).
    pub server_latency: Duration,
    /// The server's trace span id for this request (0 when the server was
    /// built without tracing) — quote it when reporting a slow request so
    /// the operator can find the matching ring events and slow-log line.
    pub span: u64,
}

/// The hidden model's shape and identity, as declared in the server
/// hello. Two servers may sync region stores only when all three fields
/// agree — interpretations are exact statements *about one function*, and
/// merging stores of different functions would silently serve wrong
/// answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelInfo {
    /// Input dimensionality of the hidden model.
    pub dim: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Operator-assigned identity of the hidden model deployment. Two
    /// models with equal shape but different weights must get different
    /// ids; `0` (the default) opts out of identity checking beyond shape.
    pub model_id: u64,
}

/// One request message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness + round-trip probe; the server echoes the nonce.
    Ping {
        /// Opaque value echoed back in [`Response::Pong`].
        nonce: u64,
    },
    /// Interpret one instance's prediction for one class.
    Interpret {
        /// The class to interpret for.
        class: usize,
        /// Deadline budget in milliseconds from server receipt; `0` means
        /// none (the server may still apply its configured default).
        deadline_ms: u64,
        /// The instance whose prediction to interpret.
        instance: Vector,
    },
    /// Interpret up to [`MAX_BATCH`] instances in one round trip; results
    /// come back per item, in order.
    InterpretBatch {
        /// Deadline budget in milliseconds, shared by every item (`0` =
        /// none).
        deadline_ms: u64,
        /// `(instance, class)` work items.
        items: Vec<(Vector, usize)>,
    },
    /// Fetch the server's service statistics snapshot.
    Stats,
    /// Fetch a Prometheus-style text exposition of the server's metrics
    /// (counters, gauges, and per-stage latency histograms).
    Metrics,
    /// Anti-entropy round, step 1: ask for the server's region-store
    /// digest. Carries the caller's own model declaration so the server
    /// can refuse cross-model syncs with a typed
    /// [`ErrorCode::ModelMismatch`] even when the caller skipped the
    /// hello check.
    SyncDigest {
        /// The caller's model input dimensionality.
        dim: usize,
        /// The caller's model class count.
        num_classes: usize,
        /// The caller's model identity (see [`ModelInfo::model_id`]).
        model_id: u64,
    },
    /// Anti-entropy round, step 2: pull record frames the caller is
    /// missing from the named digest buckets.
    SyncPull {
        /// Digest buckets (each `< DIGEST_BUCKETS`) whose contents the
        /// caller wants.
        buckets: Vec<u32>,
        /// Sync keys (record-frame CRCs) the caller already holds in
        /// those buckets; the server ships only what is absent here.
        have: Vec<u64>,
        /// Soft cap on shipped frame bytes; the server marks the reply
        /// truncated when it stops early, and the caller pulls again.
        max_bytes: u64,
    },
}

/// One response message. On a connection, responses arrive in request
/// order — requests may be pipelined, answers never reorder.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The request's nonce, echoed.
        nonce: u64,
    },
    /// Answer to [`Request::Interpret`].
    Interpreted(RemoteServed),
    /// Answer to [`Request::InterpretBatch`]: one result per item, in
    /// submission order.
    Batch(Vec<Result<RemoteServed, RemoteError>>),
    /// Answer to [`Request::Stats`]. Boxed: the snapshot carries the raw
    /// latency bucket arrays (~2.3 KiB) and would otherwise dominate the
    /// size of every `Response` on the stack.
    StatsReply(Box<StatsSnapshot>),
    /// Answer to [`Request::Metrics`]: the exposition text, UTF-8.
    MetricsReply(String),
    /// Answer to [`Request::SyncDigest`]. Boxed: the digest is a
    /// 64-bucket array (~1 KiB) that would otherwise dominate every
    /// `Response`'s stack size.
    SyncDigestReply(Box<StoreDigest>),
    /// Answer to [`Request::SyncPull`]: verbatim record frames the
    /// caller was missing, exactly as they sit in the server's WAL.
    SyncPullReply(SyncDelta),
    /// A typed failure (answer to any request, or — for
    /// [`ErrorCode::Malformed`] frames — to bytes that never became one).
    Error(RemoteError),
}

/// Encodes a hello: magic + version.
pub fn encode_hello(version: u32) -> [u8; HELLO_LEN] {
    let mut hello = [0u8; HELLO_LEN];
    hello[..8].copy_from_slice(&MAGIC);
    hello[8..].copy_from_slice(&version.to_le_bytes());
    hello
}

/// Decodes a hello, returning the peer's version.
///
/// # Errors
/// [`WireError::BadMagic`] when the magic bytes are wrong.
pub fn decode_hello(hello: &[u8; HELLO_LEN]) -> Result<u32, WireError> {
    if hello[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&hello[..8]);
        return Err(WireError::BadMagic { found });
    }
    Ok(u32::from_le_bytes(hello[8..].try_into().expect("4 bytes")))
}

/// Encodes a server hello: magic + version + the hidden model's shape and
/// identity. The first [`HELLO_LEN`] bytes are laid out exactly like a
/// client hello, so a client can read those, learn the version, and only
/// then commit to reading the model tail.
pub fn encode_server_hello(version: u32, model: &ModelInfo) -> [u8; SERVER_HELLO_LEN] {
    let mut hello = [0u8; SERVER_HELLO_LEN];
    hello[..8].copy_from_slice(&MAGIC);
    hello[8..12].copy_from_slice(&version.to_le_bytes());
    hello[12..16].copy_from_slice(&(model.dim.min(u32::MAX as usize) as u32).to_le_bytes());
    hello[16..20].copy_from_slice(&(model.num_classes.min(u32::MAX as usize) as u32).to_le_bytes());
    hello[20..28].copy_from_slice(&model.model_id.to_le_bytes());
    hello
}

/// Decodes a server hello, returning the peer's version and model
/// declaration.
///
/// # Errors
/// [`WireError::BadMagic`] when the magic bytes are wrong.
pub fn decode_server_hello(hello: &[u8; SERVER_HELLO_LEN]) -> Result<(u32, ModelInfo), WireError> {
    let mut head = [0u8; HELLO_LEN];
    head.copy_from_slice(&hello[..HELLO_LEN]);
    let version = decode_hello(&head)?;
    let dim = u32::from_le_bytes(hello[12..16].try_into().expect("4 bytes")) as usize;
    let num_classes = u32::from_le_bytes(hello[16..20].try_into().expect("4 bytes")) as usize;
    let model_id = u64::from_le_bytes(hello[20..28].try_into().expect("8 bytes"));
    Ok((
        version,
        ModelInfo {
            dim,
            num_classes,
            model_id,
        },
    ))
}

fn get_u8(buf: &mut &[u8], what: &'static str) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated {
            what,
            needed: 1,
            remaining: 0,
        }
        .into());
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8], what: &'static str) -> Result<u16, WireError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated {
            what,
            needed: 2,
            remaining: buf.remaining(),
        }
        .into());
    }
    Ok(buf.get_u16_le())
}

fn get_u64(buf: &mut &[u8], what: &'static str) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated {
            what,
            needed: 8,
            remaining: buf.remaining(),
        }
        .into());
    }
    Ok(buf.get_u64_le())
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    codec::put_len(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8], what: &'static str) -> Result<String, WireError> {
    let len = codec::get_len(buf, what)?;
    if buf.remaining() < len {
        return Err(CodecError::Truncated {
            what,
            needed: len,
            remaining: buf.remaining(),
        }
        .into());
    }
    let (bytes, rest) = buf.split_at(len);
    let s = String::from_utf8_lossy(bytes).into_owned();
    *buf = rest;
    Ok(s)
}

fn outcome_to_u8(outcome: ServeOutcome) -> u8 {
    match outcome {
        ServeOutcome::CacheHit => 0,
        ServeOutcome::StoreHit => 1,
        ServeOutcome::Solved => 2,
        ServeOutcome::Coalesced => 3,
    }
}

fn outcome_from_u8(value: u8) -> Result<ServeOutcome, WireError> {
    match value {
        0 => Ok(ServeOutcome::CacheHit),
        1 => Ok(ServeOutcome::StoreHit),
        2 => Ok(ServeOutcome::Solved),
        3 => Ok(ServeOutcome::Coalesced),
        other => Err(WireError::BadValue {
            what: "serve outcome",
            value: u64::from(other),
        }),
    }
}

/// Durations travel as whole microseconds; `u64::MAX` encodes `None` for
/// the optional latency quantiles.
const NO_DURATION: u64 = u64::MAX;

fn put_opt_duration(buf: &mut Vec<u8>, d: Option<Duration>) {
    buf.put_u64_le(d.map_or(NO_DURATION, |d| {
        d.as_micros().min(u128::from(NO_DURATION - 1)) as u64
    }));
}

fn get_opt_duration(buf: &mut &[u8], what: &'static str) -> Result<Option<Duration>, WireError> {
    let micros = get_u64(buf, what)?;
    Ok((micros != NO_DURATION).then(|| Duration::from_micros(micros)))
}

fn put_served(buf: &mut Vec<u8>, served: &RemoteServed) {
    buf.put_u8(outcome_to_u8(served.outcome));
    codec::put_len(buf, served.queries);
    buf.put_u64_le(served.server_latency.as_micros().min(u128::from(u64::MAX)) as u64);
    buf.put_u64_le(served.span);
    // The interpretation travels as one openapi-store record frame —
    // byte-identical to its on-disk representation, CRC included.
    record::put_record(buf, served.fingerprint, &served.interpretation);
}

fn get_served(buf: &mut &[u8]) -> Result<RemoteServed, WireError> {
    let outcome = outcome_from_u8(get_u8(buf, "served outcome")?)?;
    let queries = codec::get_len(buf, "served queries")?;
    let latency = Duration::from_micros(get_u64(buf, "served latency")?);
    let span = get_u64(buf, "served span")?;
    let region = record::get_record(buf)?;
    Ok(RemoteServed {
        interpretation: region.interpretation,
        fingerprint: region.fingerprint,
        outcome,
        queries,
        server_latency: latency,
        span,
    })
}

fn put_remote_error(buf: &mut Vec<u8>, e: &RemoteError) {
    buf.put_u16_le(e.code.as_u16());
    put_string(buf, &e.message);
}

fn get_remote_error(buf: &mut &[u8]) -> Result<RemoteError, WireError> {
    let raw = get_u16(buf, "error code")?;
    let code = ErrorCode::from_u16(raw).ok_or(WireError::BadValue {
        what: "error code",
        value: u64::from(raw),
    })?;
    let message = get_string(buf, "error message")?;
    Ok(RemoteError { code, message })
}

fn put_store_stats(buf: &mut Vec<u8>, s: &StoreStatsSnapshot) {
    codec::put_len(buf, s.regions);
    buf.put_u64_le(s.wal_bytes);
    codec::put_len(buf, s.segments);
    for v in [
        s.appends,
        s.duplicate_appends,
        s.flushed_records,
        s.fsyncs,
        s.lookups,
        s.hits,
        s.compactions,
        s.recovered_wal_records,
        s.recovered_segment_records,
        s.recovered_discarded_bytes,
    ] {
        buf.put_u64_le(v);
    }
}

fn get_store_stats(buf: &mut &[u8]) -> Result<StoreStatsSnapshot, WireError> {
    let regions = codec::get_len(buf, "store regions")?;
    let wal_bytes = get_u64(buf, "store wal bytes")?;
    let segments = codec::get_len(buf, "store segments")?;
    let mut counters = [0u64; 10];
    for c in &mut counters {
        *c = get_u64(buf, "store counter")?;
    }
    Ok(StoreStatsSnapshot {
        regions,
        wal_bytes,
        segments,
        appends: counters[0],
        duplicate_appends: counters[1],
        flushed_records: counters[2],
        fsyncs: counters[3],
        lookups: counters[4],
        hits: counters[5],
        compactions: counters[6],
        recovered_wal_records: counters[7],
        recovered_segment_records: counters[8],
        recovered_discarded_bytes: counters[9],
    })
}

fn put_digest(buf: &mut Vec<u8>, digest: &StoreDigest) {
    for bucket in &digest.buckets {
        buf.put_u64_le(bucket.xor);
        buf.put_u64_le(bucket.count);
    }
}

fn get_digest(buf: &mut &[u8]) -> Result<StoreDigest, WireError> {
    let mut digest = StoreDigest::default();
    for bucket in &mut digest.buckets {
        *bucket = DigestBucket {
            xor: get_u64(buf, "digest bucket xor")?,
            count: get_u64(buf, "digest bucket count")?,
        };
    }
    Ok(digest)
}

fn put_fabric_stats(buf: &mut Vec<u8>, s: &FabricStatsSnapshot) {
    for v in [
        s.peers,
        s.rounds,
        s.digests,
        s.pulled_records,
        s.pulled_bytes,
        s.ingested,
        s.duplicates,
        s.rejected,
        s.peer_failures,
        s.spot_checks,
    ] {
        buf.put_u64_le(v);
    }
}

fn get_fabric_stats(buf: &mut &[u8]) -> Result<FabricStatsSnapshot, WireError> {
    let mut counters = [0u64; 10];
    for c in &mut counters {
        *c = get_u64(buf, "fabric counter")?;
    }
    Ok(FabricStatsSnapshot {
        peers: counters[0],
        rounds: counters[1],
        digests: counters[2],
        pulled_records: counters[3],
        pulled_bytes: counters[4],
        ingested: counters[5],
        duplicates: counters[6],
        rejected: counters[7],
        peer_failures: counters[8],
        spot_checks: counters[9],
    })
}

fn put_stats(buf: &mut Vec<u8>, s: &StatsSnapshot) {
    for v in [
        s.requests,
        s.hits,
        s.store_hits,
        s.misses,
        s.coalesced_waits,
        s.coalesced_served,
        s.failures,
        s.deadline_expired,
        s.queries,
        s.evictions,
    ] {
        buf.put_u64_le(v);
    }
    codec::put_len(buf, s.cached_regions);
    put_opt_duration(buf, s.p50_latency);
    put_opt_duration(buf, s.p99_latency);
    for b in &s.latency_buckets {
        buf.put_u64_le(*b);
    }
    for stage in &s.stage_buckets {
        for b in stage {
            buf.put_u64_le(*b);
        }
    }
    match &s.store {
        Some(store) => {
            buf.put_u8(1);
            put_store_stats(buf, store);
        }
        None => buf.put_u8(0),
    }
    match &s.fabric {
        Some(fabric) => {
            buf.put_u8(1);
            put_fabric_stats(buf, fabric);
        }
        None => buf.put_u8(0),
    }
    match &s.drift {
        Some(drift) => {
            buf.put_u8(1);
            put_drift_stats(buf, drift);
        }
        None => buf.put_u8(0),
    }
}

fn put_drift_stats(buf: &mut Vec<u8>, s: &DriftStatsSnapshot) {
    for v in [
        s.detected,
        s.invalidated,
        s.tombstones,
        s.resolves,
        s.witnesses,
    ] {
        buf.put_u64_le(v);
    }
}

fn get_drift_stats(buf: &mut &[u8]) -> Result<DriftStatsSnapshot, WireError> {
    let mut counters = [0u64; 5];
    for c in &mut counters {
        *c = get_u64(buf, "drift counter")?;
    }
    Ok(DriftStatsSnapshot {
        detected: counters[0],
        invalidated: counters[1],
        tombstones: counters[2],
        resolves: counters[3],
        witnesses: counters[4],
    })
}

fn get_stats(buf: &mut &[u8]) -> Result<StatsSnapshot, WireError> {
    let mut counters = [0u64; 10];
    for c in &mut counters {
        *c = get_u64(buf, "stats counter")?;
    }
    let cached_regions = codec::get_len(buf, "stats cached regions")?;
    let p50_latency = get_opt_duration(buf, "stats p50")?;
    let p99_latency = get_opt_duration(buf, "stats p99")?;
    let mut latency_buckets = [0u64; LATENCY_BUCKETS];
    for b in &mut latency_buckets {
        *b = get_u64(buf, "stats latency bucket")?;
    }
    let mut stage_buckets = [[0u64; LATENCY_BUCKETS]; STAGES];
    for stage in &mut stage_buckets {
        for b in stage.iter_mut() {
            *b = get_u64(buf, "stats stage bucket")?;
        }
    }
    let store = match get_u8(buf, "stats store flag")? {
        0 => None,
        1 => Some(get_store_stats(buf)?),
        other => {
            return Err(WireError::BadValue {
                what: "stats store flag",
                value: u64::from(other),
            })
        }
    };
    let fabric = match get_u8(buf, "stats fabric flag")? {
        0 => None,
        1 => Some(get_fabric_stats(buf)?),
        other => {
            return Err(WireError::BadValue {
                what: "stats fabric flag",
                value: u64::from(other),
            })
        }
    };
    let drift = match get_u8(buf, "stats drift flag")? {
        0 => None,
        1 => Some(get_drift_stats(buf)?),
        other => {
            return Err(WireError::BadValue {
                what: "stats drift flag",
                value: u64::from(other),
            })
        }
    };
    Ok(StatsSnapshot {
        requests: counters[0],
        hits: counters[1],
        store_hits: counters[2],
        misses: counters[3],
        coalesced_waits: counters[4],
        coalesced_served: counters[5],
        failures: counters[6],
        deadline_expired: counters[7],
        queries: counters[8],
        evictions: counters[9],
        cached_regions,
        p50_latency,
        p99_latency,
        latency_buckets,
        stage_buckets,
        store,
        fabric,
        drift,
    })
}

/// Wraps a finished payload in its frame (length + CRC).
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + record::FRAME_HEADER);
    record::put_frame(&mut frame, payload);
    frame
}

/// Encodes an `Interpret` request frame from borrowed parts — the
/// client's hot path, sparing the instance copy [`encode_request`]'s
/// owned [`Request`] would force.
pub fn encode_interpret(class: usize, deadline_ms: u64, instance: &Vector) -> Vec<u8> {
    let mut payload = Vec::with_capacity(17 + 8 + 8 * instance.len());
    payload.put_u8(TAG_INTERPRET);
    codec::put_len(&mut payload, class);
    payload.put_u64_le(deadline_ms);
    codec::put_vector(&mut payload, instance);
    frame(&payload)
}

/// Encodes an `InterpretBatch` request frame from borrowed items (see
/// [`encode_interpret`]).
pub fn encode_interpret_batch(deadline_ms: u64, items: &[(Vector, usize)]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.put_u8(TAG_INTERPRET_BATCH);
    payload.put_u64_le(deadline_ms);
    codec::put_len(&mut payload, items.len());
    for (instance, class) in items {
        codec::put_len(&mut payload, *class);
        codec::put_vector(&mut payload, instance);
    }
    frame(&payload)
}

/// Encodes a request into one complete frame (header + CRC + payload).
pub fn encode_request(request: &Request) -> Vec<u8> {
    match request {
        Request::Ping { nonce } => {
            let mut payload = Vec::with_capacity(9);
            payload.put_u8(TAG_PING);
            payload.put_u64_le(*nonce);
            frame(&payload)
        }
        Request::Interpret {
            class,
            deadline_ms,
            instance,
        } => encode_interpret(*class, *deadline_ms, instance),
        Request::InterpretBatch { deadline_ms, items } => {
            encode_interpret_batch(*deadline_ms, items)
        }
        Request::Stats => frame(&[TAG_STATS]),
        Request::Metrics => frame(&[TAG_METRICS]),
        Request::SyncDigest {
            dim,
            num_classes,
            model_id,
        } => {
            let mut payload = Vec::with_capacity(27);
            payload.put_u8(TAG_SYNC_DIGEST);
            codec::put_len(&mut payload, *dim);
            codec::put_len(&mut payload, *num_classes);
            payload.put_u64_le(*model_id);
            frame(&payload)
        }
        Request::SyncPull {
            buckets,
            have,
            max_bytes,
        } => {
            let mut payload = Vec::with_capacity(19 + 4 * buckets.len() + 8 * have.len());
            payload.put_u8(TAG_SYNC_PULL);
            codec::put_len(&mut payload, buckets.len());
            for b in buckets {
                payload.put_u32_le(*b);
            }
            codec::put_len(&mut payload, have.len());
            for key in have {
                payload.put_u64_le(*key);
            }
            payload.put_u64_le(*max_bytes);
            frame(&payload)
        }
    }
}

/// Decodes a request from a verified frame payload.
///
/// # Errors
/// [`WireError`] on an unknown tag, malformed field, out-of-domain value,
/// or trailing bytes.
pub fn decode_request(mut payload: &[u8]) -> Result<Request, WireError> {
    let buf = &mut payload;
    let request = match get_u8(buf, "request tag")? {
        TAG_PING => Request::Ping {
            nonce: get_u64(buf, "ping nonce")?,
        },
        TAG_INTERPRET => Request::Interpret {
            class: codec::get_len(buf, "interpret class")?,
            deadline_ms: get_u64(buf, "interpret deadline")?,
            instance: codec::get_vector(buf, "interpret instance")?,
        },
        TAG_INTERPRET_BATCH => {
            let deadline_ms = get_u64(buf, "batch deadline")?;
            let count = codec::get_len(buf, "batch count")?;
            if count > MAX_BATCH {
                return Err(WireError::BadValue {
                    what: "batch count",
                    value: count as u64,
                });
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let class = codec::get_len(buf, "batch item class")?;
                let instance = codec::get_vector(buf, "batch item instance")?;
                items.push((instance, class));
            }
            Request::InterpretBatch { deadline_ms, items }
        }
        TAG_STATS => Request::Stats,
        TAG_METRICS => Request::Metrics,
        TAG_SYNC_DIGEST => Request::SyncDigest {
            dim: codec::get_len(buf, "sync digest dim")?,
            num_classes: codec::get_len(buf, "sync digest classes")?,
            model_id: get_u64(buf, "sync digest model id")?,
        },
        TAG_SYNC_PULL => {
            let count = codec::get_len(buf, "sync pull bucket count")?;
            if count > DIGEST_BUCKETS {
                return Err(WireError::BadValue {
                    what: "sync pull bucket count",
                    value: count as u64,
                });
            }
            let mut buckets = Vec::with_capacity(count);
            for _ in 0..count {
                if buf.remaining() < 4 {
                    return Err(CodecError::Truncated {
                        what: "sync pull bucket",
                        needed: 4,
                        remaining: buf.remaining(),
                    }
                    .into());
                }
                let b = buf.get_u32_le();
                if b as usize >= DIGEST_BUCKETS {
                    return Err(WireError::BadValue {
                        what: "sync pull bucket",
                        value: u64::from(b),
                    });
                }
                buckets.push(b);
            }
            let have_count = codec::get_len(buf, "sync pull have count")?;
            // No fixed cap: the frame length (MAX_PAYLOAD) already bounds
            // this, and the allocation below grows with bytes actually
            // present, never with a hostile count alone.
            let mut have = Vec::with_capacity(have_count.min(buf.remaining() / 8));
            for _ in 0..have_count {
                have.push(get_u64(buf, "sync pull have key")?);
            }
            Request::SyncPull {
                buckets,
                have,
                max_bytes: get_u64(buf, "sync pull max bytes")?,
            }
        }
        tag => return Err(WireError::BadTag { tag }),
    };
    if !buf.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(request)
}

/// Encodes a response into one complete frame (header + CRC + payload).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    match response {
        Response::Pong { nonce } => {
            payload.put_u8(TAG_PONG);
            payload.put_u64_le(*nonce);
        }
        Response::Interpreted(served) => {
            payload.put_u8(TAG_INTERPRETED);
            put_served(&mut payload, served);
        }
        Response::Batch(results) => {
            payload.put_u8(TAG_BATCH);
            codec::put_len(&mut payload, results.len());
            for result in results {
                match result {
                    Ok(served) => {
                        payload.put_u8(1);
                        put_served(&mut payload, served);
                    }
                    Err(e) => {
                        payload.put_u8(0);
                        put_remote_error(&mut payload, e);
                    }
                }
            }
        }
        Response::StatsReply(stats) => {
            payload.put_u8(TAG_STATS_REPLY);
            put_stats(&mut payload, stats);
        }
        Response::MetricsReply(text) => {
            payload.put_u8(TAG_METRICS_REPLY);
            put_string(&mut payload, text);
        }
        Response::SyncDigestReply(digest) => {
            payload.put_u8(TAG_SYNC_DIGEST_REPLY);
            put_digest(&mut payload, digest);
        }
        Response::SyncPullReply(delta) => {
            payload.put_u8(TAG_SYNC_PULL_REPLY);
            payload.put_u64_le(delta.records);
            payload.put_u8(u8::from(delta.truncated));
            codec::put_len(&mut payload, delta.frames.len());
            payload.extend_from_slice(&delta.frames);
        }
        Response::Error(e) => {
            payload.put_u8(TAG_ERROR);
            put_remote_error(&mut payload, e);
        }
    }
    frame(&payload)
}

/// Decodes a response from a verified frame payload.
///
/// # Errors
/// [`WireError`] on an unknown tag, malformed field, out-of-domain value,
/// or trailing bytes.
pub fn decode_response(mut payload: &[u8]) -> Result<Response, WireError> {
    let buf = &mut payload;
    let response = match get_u8(buf, "response tag")? {
        TAG_PONG => Response::Pong {
            nonce: get_u64(buf, "pong nonce")?,
        },
        TAG_INTERPRETED => Response::Interpreted(get_served(buf)?),
        TAG_BATCH => {
            let count = codec::get_len(buf, "batch reply count")?;
            if count > MAX_BATCH {
                return Err(WireError::BadValue {
                    what: "batch reply count",
                    value: count as u64,
                });
            }
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(match get_u8(buf, "batch item flag")? {
                    1 => Ok(get_served(buf)?),
                    0 => Err(get_remote_error(buf)?),
                    other => {
                        return Err(WireError::BadValue {
                            what: "batch item flag",
                            value: u64::from(other),
                        })
                    }
                });
            }
            Response::Batch(results)
        }
        TAG_STATS_REPLY => Response::StatsReply(Box::new(get_stats(buf)?)),
        TAG_METRICS_REPLY => Response::MetricsReply(get_string(buf, "metrics text")?),
        TAG_SYNC_DIGEST_REPLY => Response::SyncDigestReply(Box::new(get_digest(buf)?)),
        TAG_SYNC_PULL_REPLY => {
            let records = get_u64(buf, "sync pull records")?;
            let truncated = match get_u8(buf, "sync pull truncated flag")? {
                0 => false,
                1 => true,
                other => {
                    return Err(WireError::BadValue {
                        what: "sync pull truncated flag",
                        value: u64::from(other),
                    })
                }
            };
            let len = codec::get_len(buf, "sync pull frame bytes")?;
            if buf.remaining() < len {
                return Err(CodecError::Truncated {
                    what: "sync pull frames",
                    needed: len,
                    remaining: buf.remaining(),
                }
                .into());
            }
            let (bytes, rest) = buf.split_at(len);
            let frames = bytes.to_vec();
            *buf = rest;
            Response::SyncPullReply(SyncDelta {
                frames,
                records,
                truncated,
            })
        }
        TAG_ERROR => Response::Error(get_remote_error(buf)?),
        tag => return Err(WireError::BadTag { tag }),
    };
    if !buf.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: buf.len(),
        });
    }
    Ok(response)
}

/// How reading one frame from a stream ended.
#[derive(Debug)]
pub enum FrameRead {
    /// A frame arrived and its CRC verified; here is its payload.
    Payload(Vec<u8>),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The stream broke mid-frame or the frame failed verification. The
    /// stream can no longer be trusted to be in sync.
    Corrupt(WireError),
}

/// Reads one frame from `r`: the same `len + CRC-64/XZ + payload` layout
/// [`openapi_store::record::get_frame`] parses from byte slices, adapted
/// to a blocking stream. A clean EOF *between* frames is
/// [`FrameRead::Closed`]; an EOF *inside* a frame, an implausible length,
/// or a checksum mismatch is [`FrameRead::Corrupt`].
///
/// # Errors
/// Only genuine I/O failures (connection reset, timeouts) are returned as
/// `Err`; protocol-level trouble is in the `Ok(FrameRead)` domain.
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut header = [0u8; record::FRAME_HEADER];
    match read_full(r, &mut header)? {
        0 => return Ok(FrameRead::Closed),
        n if n < header.len() => {
            return Ok(FrameRead::Corrupt(
                CodecError::Truncated {
                    what: "wire frame header",
                    needed: header.len(),
                    remaining: n,
                }
                .into(),
            ))
        }
        _ => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let stored = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
    if len > record::MAX_PAYLOAD {
        return Ok(FrameRead::Corrupt(
            CodecError::BadLength {
                what: "wire frame payload",
                value: u64::from(len),
            }
            .into(),
        ));
    }
    // The length field is untrusted until the CRC verifies, so the buffer
    // grows chunk by chunk as bytes actually arrive — a hostile header
    // claiming a 256 MiB payload costs this process only what the peer
    // really transmits, never an up-front allocation.
    const CHUNK: usize = 64 * 1024;
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(CHUNK));
    while payload.len() < len {
        let want = (len - payload.len()).min(CHUNK);
        let start = payload.len();
        payload.resize(start + want, 0);
        let got = read_full(r, &mut payload[start..])?;
        payload.truncate(start + got);
        if got < want {
            return Ok(FrameRead::Corrupt(
                CodecError::Truncated {
                    what: "wire frame payload",
                    needed: len,
                    remaining: payload.len(),
                }
                .into(),
            ));
        }
    }
    let computed = record::crc64(&payload);
    if computed != stored {
        return Ok(FrameRead::Corrupt(
            RecordError::Checksum { stored, computed }.into(),
        ));
    }
    Ok(FrameRead::Payload(payload))
}

/// Writes one already-encoded frame to `w`.
///
/// # Errors
/// Whatever the underlying writer fails with.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Reads until `buf` is full or EOF; returns how many bytes were read.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_core::decision::PairwiseCoreParams;

    fn served(outcome: ServeOutcome) -> RemoteServed {
        let interpretation = Interpretation::from_pairwise(
            1,
            vec![
                PairwiseCoreParams {
                    c_prime: 0,
                    weights: Vector(vec![0.5, -1.25, 3.0]),
                    bias: 0.125,
                },
                PairwiseCoreParams {
                    c_prime: 2,
                    weights: Vector(vec![1e-9, 2.0, -0.75]),
                    bias: -4.5,
                },
            ],
        )
        .unwrap();
        RemoteServed {
            fingerprint: interpretation.fingerprint(6),
            interpretation: Arc::new(interpretation),
            outcome,
            queries: 11,
            server_latency: Duration::from_micros(12_345),
            span: 0xFACE,
        }
    }

    fn sample_stats(with_store: bool) -> StatsSnapshot {
        StatsSnapshot {
            requests: 100,
            hits: 60,
            store_hits: 10,
            misses: 20,
            coalesced_waits: 7,
            coalesced_served: 5,
            failures: 5,
            deadline_expired: 2,
            queries: 321,
            evictions: 4,
            cached_regions: 16,
            p50_latency: Some(Duration::from_micros(250)),
            p99_latency: None,
            latency_buckets: std::array::from_fn(|i| (i as u64) % 5),
            stage_buckets: std::array::from_fn(|s| {
                std::array::from_fn(|i| ((s * 7 + i) as u64) % 3)
            }),
            store: with_store.then_some(StoreStatsSnapshot {
                regions: 20,
                wal_bytes: 4096,
                segments: 2,
                appends: 20,
                duplicate_appends: 1,
                flushed_records: 19,
                fsyncs: 3,
                lookups: 50,
                hits: 10,
                compactions: 1,
                recovered_wal_records: 5,
                recovered_segment_records: 15,
                recovered_discarded_bytes: 13,
            }),
            fabric: with_store.then_some(FabricStatsSnapshot {
                peers: 2,
                rounds: 40,
                digests: 80,
                pulled_records: 17,
                pulled_bytes: 9999,
                ingested: 15,
                duplicates: 2,
                rejected: 0,
                peer_failures: 1,
                spot_checks: 15,
            }),
            drift: with_store.then_some(DriftStatsSnapshot {
                detected: 3,
                invalidated: 4,
                tombstones: 3,
                resolves: 2,
                witnesses: 11,
            }),
        }
    }

    fn roundtrip_request(request: Request) {
        let frame = encode_request(&request);
        let mut slice = frame.as_slice();
        let payload = record::get_frame(&mut slice).unwrap();
        assert!(slice.is_empty(), "one frame, consumed exactly");
        assert_eq!(decode_request(payload).unwrap(), request);
    }

    fn roundtrip_response(response: Response) {
        let frame = encode_response(&response);
        let mut slice = frame.as_slice();
        let payload = record::get_frame(&mut slice).unwrap();
        assert!(slice.is_empty(), "one frame, consumed exactly");
        assert_eq!(decode_response(payload).unwrap(), response);
    }

    #[test]
    fn every_request_round_trips() {
        roundtrip_request(Request::Ping { nonce: 0xDEAD_BEEF });
        roundtrip_request(Request::Interpret {
            class: 3,
            deadline_ms: 1500,
            instance: Vector(vec![0.25, -1.5, 1e-300, 42.0]),
        });
        roundtrip_request(Request::InterpretBatch {
            deadline_ms: 0,
            items: vec![(Vector(vec![1.0, 2.0]), 0), (Vector(vec![-0.5, 0.5]), 7)],
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::SyncDigest {
            dim: 16,
            num_classes: 4,
            model_id: 0xFEED_F00D,
        });
        roundtrip_request(Request::SyncPull {
            buckets: vec![0, 17, 63],
            have: vec![0xAAAA, 0xBBBB, u64::MAX],
            max_bytes: 1 << 20,
        });
        roundtrip_request(Request::SyncPull {
            buckets: Vec::new(),
            have: Vec::new(),
            max_bytes: 0,
        });
    }

    #[test]
    fn every_response_round_trips() {
        roundtrip_response(Response::Pong { nonce: 7 });
        for outcome in [
            ServeOutcome::CacheHit,
            ServeOutcome::StoreHit,
            ServeOutcome::Solved,
            ServeOutcome::Coalesced,
        ] {
            roundtrip_response(Response::Interpreted(served(outcome)));
        }
        roundtrip_response(Response::Batch(vec![
            Ok(served(ServeOutcome::Solved)),
            Err(RemoteError {
                code: ErrorCode::Interpret,
                message: "dimension mismatch: expected 8, found 5".into(),
            }),
            Ok(served(ServeOutcome::CacheHit)),
        ]));
        roundtrip_response(Response::StatsReply(Box::new(sample_stats(false))));
        roundtrip_response(Response::StatsReply(Box::new(sample_stats(true))));
        roundtrip_response(Response::MetricsReply(
            "# TYPE openapi_requests_total counter\nopenapi_requests_total 100\n".into(),
        ));
        roundtrip_response(Response::Error(RemoteError {
            code: ErrorCode::Busy,
            message: String::new(),
        }));
        roundtrip_response(Response::Error(RemoteError {
            code: ErrorCode::ModelMismatch,
            message: "peer model 3x2 id 7, local 3x2 id 9".into(),
        }));
        let mut digest = StoreDigest::default();
        digest.add(0xDEAD_BEEF);
        digest.add(0xFEED_F00D);
        roundtrip_response(Response::SyncDigestReply(Box::new(digest)));
        let mut frames = Vec::new();
        record::put_record(
            &mut frames,
            served(ServeOutcome::Solved).fingerprint,
            &served(ServeOutcome::Solved).interpretation,
        );
        roundtrip_response(Response::SyncPullReply(SyncDelta {
            frames,
            records: 1,
            truncated: true,
        }));
        roundtrip_response(Response::SyncPullReply(SyncDelta::default()));
    }

    #[test]
    fn sync_pull_rejects_out_of_domain_buckets() {
        let mut payload = vec![TAG_SYNC_PULL];
        codec::put_len(&mut payload, 1);
        payload.put_u32_le(DIGEST_BUCKETS as u32);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadValue {
                what: "sync pull bucket",
                ..
            })
        ));
        let mut payload = vec![TAG_SYNC_PULL];
        codec::put_len(&mut payload, DIGEST_BUCKETS + 1);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadValue {
                what: "sync pull bucket count",
                ..
            })
        ));
    }

    #[test]
    fn server_hello_round_trips_and_shares_the_client_prefix() {
        let model = ModelInfo {
            dim: 24,
            num_classes: 5,
            model_id: 0xC0FF_EE00,
        };
        let hello = encode_server_hello(VERSION, &model);
        assert_eq!(decode_server_hello(&hello).unwrap(), (VERSION, model));
        // A version-only reader parses the first HELLO_LEN bytes as an
        // ordinary hello — that is what lets old clients learn the
        // version before rejecting us.
        let mut head = [0u8; HELLO_LEN];
        head.copy_from_slice(&hello[..HELLO_LEN]);
        assert_eq!(decode_hello(&head).unwrap(), VERSION);
        let mut bad = hello;
        bad[3] ^= 0x40;
        assert!(matches!(
            decode_server_hello(&bad),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_magic() {
        let hello = encode_hello(VERSION);
        assert_eq!(decode_hello(&hello).unwrap(), VERSION);
        let mut bad = hello;
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_hello(&bad),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_typed_errors() {
        assert!(matches!(
            decode_request(&[0x7F]),
            Err(WireError::BadTag { tag: 0x7F })
        ));
        assert!(matches!(
            decode_response(&[0x01]),
            Err(WireError::BadTag { tag: 0x01 })
        ));
        // A valid Stats request followed by junk.
        assert!(matches!(
            decode_request(&[TAG_STATS, 0xAA]),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
        assert!(matches!(decode_request(&[]), Err(WireError::Codec(_))));
    }

    #[test]
    fn oversized_batch_counts_are_rejected() {
        let mut payload = vec![TAG_INTERPRET_BATCH];
        payload.put_u64_le(0);
        codec::put_len(&mut payload, MAX_BATCH + 1);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadValue {
                what: "batch count",
                ..
            })
        ));
    }

    #[test]
    fn every_truncation_of_a_framed_request_is_detected() {
        let frame = encode_request(&Request::Interpret {
            class: 1,
            deadline_ms: 250,
            instance: Vector(vec![0.5, -0.5, 1.5]),
        });
        for keep in 0..frame.len() {
            let mut cursor = &frame[..keep];
            match record::get_frame(&mut cursor) {
                Err(_) => {}
                Ok(payload) => panic!("truncation to {keep} bytes slipped through: {payload:?}"),
            }
        }
    }

    #[test]
    fn every_byte_flip_of_a_framed_request_is_detected() {
        let frame = encode_request(&Request::Interpret {
            class: 0,
            deadline_ms: 0,
            instance: Vector(vec![1.0, 2.0]),
        });
        for i in 0..frame.len() {
            let mut corrupt = frame.clone();
            corrupt[i] ^= 0x10;
            let mut cursor = corrupt.as_slice();
            match record::get_frame(&mut cursor) {
                // Length-field flips read as truncation/bad length; payload
                // flips fail the CRC. Either way: typed, never a panic.
                Err(_) => {}
                Ok(payload) => {
                    // A flip confined to the *length* field that still
                    // frames correctly is impossible here (the buffer holds
                    // exactly one frame), so the CRC must have fired.
                    panic!("flip at byte {i} decoded as {payload:?}");
                }
            }
        }
    }

    #[test]
    fn stream_framing_round_trips_and_reports_clean_close() {
        let frame = encode_request(&Request::Ping { nonce: 99 });
        let mut stream: Vec<u8> = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        write_frame(&mut stream, &frame).unwrap();
        let mut cursor = io::Cursor::new(stream);
        for _ in 0..2 {
            match read_frame(&mut cursor).unwrap() {
                FrameRead::Payload(p) => {
                    assert_eq!(decode_request(&p).unwrap(), Request::Ping { nonce: 99 });
                }
                other => panic!("expected payload, got {other:?}"),
            }
        }
        assert!(matches!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Closed
        ));
    }

    #[test]
    fn stream_truncation_mid_frame_is_corrupt_not_closed() {
        let frame = encode_request(&Request::Stats);
        for keep in 1..frame.len() {
            let mut cursor = io::Cursor::new(frame[..keep].to_vec());
            assert!(
                matches!(read_frame(&mut cursor).unwrap(), FrameRead::Corrupt(_)),
                "EOF {keep} bytes into a frame must read as corruption"
            );
        }
    }
}
