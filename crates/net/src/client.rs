//! A blocking wire-protocol client with connection reuse.

use crate::wire::{
    self, FrameRead, ModelInfo, RemoteError, RemoteServed, Request, Response, WireError, VERSION,
};
use openapi_linalg::Vector;
use openapi_serve::StatsSnapshot;
use openapi_store::{StoreDigest, SyncDelta};
use openapi_trace::clock;
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or the server hanging up
    /// mid-exchange).
    Io(io::Error),
    /// The server's bytes did not decode as the protocol (wrong magic on
    /// the hello, a corrupt frame, a malformed response body).
    Wire(WireError),
    /// The server speaks a different protocol version.
    VersionMismatch {
        /// The version the server's hello advertised.
        server_version: u32,
    },
    /// The server answered this request with a typed error.
    Remote(RemoteError),
    /// The server answered with a well-formed response of the wrong kind
    /// for the request (protocol bug, or a non-pipelined reuse violation).
    UnexpectedResponse {
        /// The response kind the call expected.
        expected: &'static str,
    },
    /// A previous call on this connection failed mid-exchange (e.g. a
    /// read timeout with the response still in flight), so the stream can
    /// no longer be trusted to pair requests with responses: a later read
    /// could silently return the *earlier* request's answer. The client
    /// refuses further calls; reconnect to continue.
    Poisoned,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Wire(e) => write!(f, "protocol: {e}"),
            ClientError::VersionMismatch { server_version } => write!(
                f,
                "server speaks protocol version {server_version}, this client speaks {VERSION}"
            ),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { expected } => {
                write!(
                    f,
                    "server sent a response of the wrong kind (expected {expected})"
                )
            }
            ClientError::Poisoned => write!(
                f,
                "connection poisoned by an earlier mid-exchange failure; reconnect"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking client over one reused TCP connection.
///
/// Calls are strictly request→response (no client-side pipelining), so the
/// connection is reusable indefinitely; the server keeps it open across
/// any number of calls. The client is `Send` — hand one to each worker
/// thread; it is deliberately not shareable between threads (`&mut self`
/// methods), matching one-connection-one-conversation.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    peer: SocketAddr,
    /// The hidden model the server declared in its hello — dimensionality,
    /// class count, and deployment identity.
    server_model: ModelInfo,
    next_nonce: u64,
    /// Set when an exchange failed after its request was written: an
    /// unread response may still be in flight, so request/response
    /// pairing is lost and every further call must be refused
    /// ([`ClientError::Poisoned`]) rather than risk serving a stale
    /// answer as a fresh one.
    poisoned: bool,
}

impl Client {
    /// Connects and performs the protocol handshake.
    ///
    /// # Errors
    /// [`ClientError::Io`] on connect failures, [`ClientError::Wire`] when
    /// the peer is not speaking this protocol, and
    /// [`ClientError::VersionMismatch`] when it speaks another version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(&wire::encode_hello(VERSION))?;
        stream.flush()?;
        // The server hello's first HELLO_LEN bytes are laid out exactly
        // like a client hello; read those first, learn the version, and
        // only then commit to reading the v2 model tail — a server
        // speaking another version may not send one.
        let mut hello = [0u8; wire::SERVER_HELLO_LEN];
        io::Read::read_exact(&mut stream, &mut hello[..wire::HELLO_LEN])?;
        let mut head = [0u8; wire::HELLO_LEN];
        head.copy_from_slice(&hello[..wire::HELLO_LEN]);
        let server_version = wire::decode_hello(&head)?;
        if server_version != VERSION {
            return Err(ClientError::VersionMismatch { server_version });
        }
        io::Read::read_exact(&mut stream, &mut hello[wire::HELLO_LEN..])?;
        let (_, server_model) = wire::decode_server_hello(&hello)?;
        let peer = stream.peer_addr()?;
        Ok(Client {
            stream,
            peer,
            server_model,
            next_nonce: 1,
            poisoned: false,
        })
    }

    /// The hidden model the server declared at connect: input
    /// dimensionality, class count, and deployment identity. Anti-entropy
    /// peers compare this against their own model before syncing; ordinary
    /// clients can use it to validate instance shapes up front.
    pub fn server_model(&self) -> ModelInfo {
        self.server_model
    }

    /// The server's address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Sets a timeout on blocking reads, bounding how long any call waits
    /// for its response (`None` = wait forever, the default).
    ///
    /// # Errors
    /// I/O errors from the socket option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// One request→response exchange. Any failure after the request was
    /// written poisons the connection: its response may still arrive
    /// later, and a subsequent call must never read it as its own.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.exchange(&wire::encode_request(request))
    }

    /// Writes one already-encoded request frame and reads its response.
    fn exchange(&mut self, frame: &[u8]) -> Result<Response, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        self.poisoned = true;
        wire::write_frame(&mut self.stream, frame)?;
        let response = match wire::read_frame(&mut self.stream)? {
            FrameRead::Payload(payload) => wire::decode_response(&payload)?,
            FrameRead::Closed => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                )))
            }
            FrameRead::Corrupt(e) => return Err(ClientError::Wire(e)),
        };
        // A complete, verified response frame arrived for this request:
        // the exchange is balanced and the connection stays usable. (A
        // typed `Response::Error` is a *valid* answer — callers map it to
        // `ClientError::Remote` without poisoning anything.)
        self.poisoned = false;
        Ok(response)
    }

    /// Round-trip liveness probe; returns the measured round-trip time.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or server-side failures.
    pub fn ping(&mut self) -> Result<Duration, ClientError> {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let start = clock::now();
        match self.call(&Request::Ping { nonce })? {
            Response::Pong { nonce: echoed } if echoed == nonce => Ok(start.elapsed()),
            Response::Pong { .. } => Err(ClientError::UnexpectedResponse {
                expected: "pong with matching nonce",
            }),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::UnexpectedResponse { expected: "pong" }),
        }
    }

    /// Interprets one instance's prediction for `class`, with no deadline
    /// beyond the server's default.
    ///
    /// # Errors
    /// [`ClientError::Remote`] carries the server's typed refusal
    /// ([`wire::ErrorCode::Busy`], [`wire::ErrorCode::DeadlineExceeded`],
    /// [`wire::ErrorCode::Interpret`], …); transport and protocol failures map
    /// to the other variants.
    pub fn interpret(
        &mut self,
        instance: &Vector,
        class: usize,
    ) -> Result<RemoteServed, ClientError> {
        self.interpret_inner(instance, class, 0)
    }

    /// Like [`Client::interpret`], with a deadline `budget` the server
    /// enforces from receipt (a lapsed budget answers
    /// [`wire::ErrorCode::DeadlineExceeded`]).
    ///
    /// # Errors
    /// As [`Client::interpret`].
    pub fn interpret_within(
        &mut self,
        instance: &Vector,
        class: usize,
        budget: Duration,
    ) -> Result<RemoteServed, ClientError> {
        self.interpret_inner(instance, class, budget.as_millis().max(1) as u64)
    }

    fn interpret_inner(
        &mut self,
        instance: &Vector,
        class: usize,
        deadline_ms: u64,
    ) -> Result<RemoteServed, ClientError> {
        // Encoded from borrowed parts: the hot path never copies the
        // instance just to build an owned `Request` it would drop.
        match self.exchange(&wire::encode_interpret(class, deadline_ms, instance))? {
            Response::Interpreted(served) => Ok(served),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "interpretation",
            }),
        }
    }

    /// Interprets up to [`wire::MAX_BATCH`] `(instance, class)` items in
    /// one round trip; results come back per item, in order.
    ///
    /// # Errors
    /// Per-item failures are `Err` *inside* the returned vector; the outer
    /// error covers the exchange itself (transport, protocol, or a
    /// whole-batch refusal such as [`wire::ErrorCode::Busy`]).
    pub fn interpret_batch(
        &mut self,
        items: &[(Vector, usize)],
        budget: Option<Duration>,
    ) -> Result<Vec<Result<RemoteServed, RemoteError>>, ClientError> {
        let deadline_ms = budget.map_or(0, |b| b.as_millis().max(1) as u64);
        match self.exchange(&wire::encode_interpret_batch(deadline_ms, items))? {
            Response::Batch(results) => Ok(results),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "batch reply",
            }),
        }
    }

    /// Fetches the server's service statistics snapshot.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or server-side failures.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsReply(stats) => Ok(*stats),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::UnexpectedResponse { expected: "stats" }),
        }
    }

    /// Fetches the server's Prometheus-style metrics exposition (counters,
    /// gauges, and per-stage latency histograms as text).
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or server-side failures.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsReply(text) => Ok(text),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "metrics",
            }),
        }
    }

    /// Anti-entropy step 1: fetches the server's region-store digest,
    /// declaring `model` as the caller's own hidden model. A server
    /// fronting a different model refuses with
    /// [`wire::ErrorCode::ModelMismatch`]; one without a durable store,
    /// with [`wire::ErrorCode::NoStore`].
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or server-side failures.
    pub fn sync_digest(&mut self, model: &ModelInfo) -> Result<StoreDigest, ClientError> {
        match self.call(&Request::SyncDigest {
            dim: model.dim,
            num_classes: model.num_classes,
            model_id: model.model_id,
        })? {
            Response::SyncDigestReply(digest) => Ok(*digest),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "sync digest",
            }),
        }
    }

    /// Anti-entropy step 2: pulls record frames from the named digest
    /// `buckets` that are absent from `have` (the caller's own sync keys
    /// in those buckets), capped near `max_bytes`. A truncated reply means
    /// more remains — pull again with the updated `have`.
    ///
    /// # Errors
    /// [`ClientError`] on transport, protocol, or server-side failures.
    pub fn sync_pull(
        &mut self,
        buckets: &[u32],
        have: &[u64],
        max_bytes: usize,
    ) -> Result<SyncDelta, ClientError> {
        match self.call(&Request::SyncPull {
            buckets: buckets.to_vec(),
            have: have.to_vec(),
            max_bytes: max_bytes as u64,
        })? {
            Response::SyncPullReply(delta) => Ok(delta),
            Response::Error(e) => Err(ClientError::Remote(e)),
            _ => Err(ClientError::UnexpectedResponse {
                expected: "sync pull",
            }),
        }
    }
}
