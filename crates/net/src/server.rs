//! The TCP serving tier: a threaded acceptor in front of an
//! [`InterpretationService`].
//!
//! One connection is handled by two threads: a *reader* that decodes
//! request frames and submits work, and a *writer* that resolves tickets
//! and writes response frames in request order (clients may pipeline;
//! answers never reorder). The reader feeds the writer through a
//! per-connection queue bounded by
//! [`ServerConfig::max_inflight_per_conn`]: interpret work past the bound
//! is answered immediately with a typed [`ErrorCode::Busy`] instead of
//! piling unbounded load onto the shared worker pool — backpressure the
//! client can see and retry on.
//!
//! Shutdown ([`Server::close`]) is graceful end to end: stop accepting,
//! shut the read half of every live connection (so readers stop taking new
//! requests), let every writer drain its in-flight tickets and write their
//! responses, join all threads, then close the service — which flushes and
//! fsyncs the durable store when one is attached.

use crate::budget::ConnBudget;
use crate::wire::{
    self, ErrorCode, FrameRead, ModelInfo, RemoteError, RemoteServed, Request, Response, VERSION,
};
use openapi_api::PredictionApi;
use openapi_linalg::Vector;
use openapi_serve::{InterpretRequest, InterpretationService, ServeError, Served, Ticket};
use openapi_store::StoreError;
use openapi_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use openapi_sync::Mutex;
use openapi_trace::{clock, RequestSpan, Stage};
use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most interpret requests one connection may have in flight (queued
    /// or solving) before further ones are answered [`ErrorCode::Busy`]
    /// (clamped to ≥ 1). A batch counts as its item count — except on an
    /// idle connection, where any protocol-legal batch is admitted even
    /// past this bound, so oversized batches are delayed by backpressure,
    /// never starved by it.
    pub max_inflight_per_conn: usize,
    /// Deadline applied to interpret requests that do not carry their own
    /// (`None` = no default: such requests may occupy a worker until they
    /// resolve).
    pub default_deadline: Option<Duration>,
    /// Per-`write` timeout on every connection, so a client that stops
    /// reading its responses cannot stall the writer (and with it,
    /// graceful shutdown) forever. `None` disables the guard.
    pub write_timeout: Option<Duration>,
    /// Operator-assigned identity of the hidden model this server fronts,
    /// declared in the server hello and enforced on sync requests (see
    /// [`ModelInfo::model_id`]). Two servers replicate region stores only
    /// when dim, class count, *and* this id agree; `0` (the default)
    /// checks shape alone.
    pub model_id: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight_per_conn: 64,
            default_deadline: None,
            write_timeout: Some(Duration::from_secs(30)),
            model_id: 0,
        }
    }
}

/// What the reader hands the writer for one request, in request order.
enum Slot {
    /// Already resolved (ping, stats, typed errors): write as-is. Boxed:
    /// a stats reply is an order of magnitude bigger than a ticket, and
    /// every queued slot would otherwise pay its footprint.
    Ready(Box<Response>),
    /// A submitted interpret request: wait, then write.
    Pending(Ticket),
    /// A submitted batch: wait for each, then write one reply.
    PendingBatch(Vec<Ticket>),
}

/// State shared by the acceptor, every connection thread, and the handle.
struct Shared<M: PredictionApi + Send + Sync + 'static> {
    service: InterpretationService<M>,
    config: ServerConfig,
    stopping: AtomicBool,
    /// Read halves of live connections, for shutdown. Keyed by connection
    /// id so a finished reader can deregister itself.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A TCP server exposing an [`InterpretationService`] over the wire
/// protocol (see [`crate::wire`] and `docs/PROTOCOL.md`).
///
/// Dropping the server performs the same graceful drain as
/// [`Server::close`] but can only swallow store errors; prefer `close` to
/// observe them.
pub struct Server<M: PredictionApi + Send + Sync + 'static> {
    /// `Some` until [`Server::close`] takes the state out; every other
    /// method runs while it is populated.
    shared: Option<Arc<Shared<M>>>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<M: PredictionApi + Send + Sync + 'static> Server<M> {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections into `service`.
    ///
    /// # Errors
    /// I/O errors binding the listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: InterpretationService<M>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let mut config = config;
        config.max_inflight_per_conn = config.max_inflight_per_conn.max(1);
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || accept_loop(&listener, &shared, &handlers))
        };
        Ok(Server {
            shared: Some(shared),
            local_addr,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    fn shared(&self) -> &Arc<Shared<M>> {
        self.shared
            .as_ref()
            .expect("server state lives until close")
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Borrow the underlying service (e.g. for its statistics).
    pub fn service(&self) -> &InterpretationService<M> {
        &self.shared().service
    }

    /// Graceful shutdown: stop accepting, stop reading new requests, drain
    /// every in-flight ticket to its response, join all threads, then
    /// close the service (final store flush + fsync when one is attached).
    ///
    /// # Errors
    /// [`StoreError`] when the store's final flush fails.
    pub fn close(mut self) -> Result<(), StoreError> {
        self.drain();
        // All connection and acceptor threads are joined, so this handle
        // owns the last `Arc` and can take the service out for a fallible
        // close; if something still holds a clone, fall back to drop
        // semantics (flushed, not observable) exactly like
        // `InterpretationService::close` does for its store.
        match Arc::try_unwrap(self.shared.take().expect("first close")) {
            Ok(shared) => shared.service.close(),
            Err(shared) => {
                drop(shared);
                Ok(())
            }
        }
    }

    /// Stops the acceptor and drains every live connection. Idempotent.
    fn drain(&mut self) {
        let shared = Arc::clone(self.shared());
        // ordering: SeqCst — shutdown takes the strongest ordering so the
        // store, the acceptor's load, and every connection's recheck agree
        // on one total order; this runs once per server lifetime, so the
        // cost is irrelevant and the simplicity is not.
        shared.stopping.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection to ourselves; the
        // acceptor sees `stopping` before handling it. A `0.0.0.0`/`::`
        // bind is not connectable as-is — aim the wake-up at loopback on
        // the bound port instead.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let woke = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(5)).is_ok();
        if let Some(acceptor) = self.acceptor.take() {
            if woke {
                let _ = acceptor.join();
            }
            // A failed wake-up (unroutable bind address, saturated SYN
            // backlog) must not hang `close`/`Drop` forever: leave the
            // acceptor parked in `accept` — it exits with the process,
            // and `stopping` keeps it from serving anything meanwhile.
        }
        // Readers blocked in `read` observe EOF once the read half shuts;
        // their writers then drain pending tickets and exit.
        for (_, conn) in shared.conns.lock().iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        let handlers = std::mem::take(&mut *self.handlers.lock());
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

impl<M: PredictionApi + Send + Sync + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.drain();
        }
    }
}

impl<M: PredictionApi + Send + Sync + 'static> std::fmt::Debug for Server<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("config", &self.shared().config)
            .finish_non_exhaustive()
    }
}

fn accept_loop<M: PredictionApi + Send + Sync + 'static>(
    listener: &TcpListener,
    shared: &Arc<Shared<M>>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        // ordering: SeqCst — pairs with the shutdown store (see `drain`).
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            // Persistent accept errors (EMFILE under fd exhaustion, most
            // likely) would otherwise busy-spin a core; back off briefly
            // and let in-flight connections finish and free descriptors.
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        let mut guard = handlers.lock();
        // Opportunistically reap finished connections so a long-lived
        // server does not accumulate a handle per past connection.
        guard.retain(|h| !h.is_finished());
        let shared = Arc::clone(shared);
        guard.push(std::thread::spawn(move || {
            handle_connection(&shared, stream);
        }));
    }
}

/// Runs one connection: handshake, then the reader loop feeding a writer
/// thread. Returns when the client closes, the stream corrupts, or
/// shutdown shuts the read half.
fn handle_connection<M: PredictionApi + Send + Sync + 'static>(
    shared: &Arc<Shared<M>>,
    mut stream: TcpStream,
) {
    stream.set_nodelay(true).ok();
    // ordering: Relaxed — connection IDs only need uniqueness; all the
    // registry traffic they key is ordered by the registry mutex.
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    match stream.try_clone() {
        Ok(clone) => shared.conns.lock().insert(conn_id, clone),
        // No clone means no shutdown handle: serving anyway would leave a
        // connection graceful shutdown cannot reach (a blocked reader
        // would hang `Server::close` forever). Refuse it instead —
        // try_clone only fails under fd exhaustion, where shedding load
        // is the right answer anyway.
        Err(_) => return,
    };
    // Registration races shutdown's registry sweep: a connection accepted
    // just before `stopping` was set may register *after* the sweep ran
    // and would never see its read half shut. The recheck closes the
    // window — either the sweep saw us, or we see `stopping` (the store
    // precedes the sweep, whose registry unlock precedes our insert).
    // ordering: SeqCst — pairs with the shutdown store (see `drain`); the
    // comment above explains why the recheck closes the race window.
    if shared.stopping.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Read);
    }
    let outcome = serve_connection(shared, &mut stream);
    if outcome.is_err() {
        // I/O trouble mid-connection: nothing to salvage, just hang up.
        let _ = stream.shutdown(Shutdown::Both);
    }
    shared.conns.lock().remove(&conn_id);
}

fn serve_connection<M: PredictionApi + Send + Sync + 'static>(
    shared: &Arc<Shared<M>>,
    stream: &mut TcpStream,
) -> io::Result<()> {
    stream.set_write_timeout(shared.config.write_timeout)?;
    // Handshake: read the client hello, answer with ours. A wrong magic is
    // not this protocol at all — close without a byte. A wrong version
    // gets our hello (so the client learns what we speak) plus a typed
    // error, then the connection closes.
    let mut hello = [0u8; wire::HELLO_LEN];
    let mut write_half = stream.try_clone()?;
    {
        let mut filled = 0;
        while filled < hello.len() {
            let n = io::Read::read(stream, &mut hello[filled..])?;
            if n == 0 {
                return Ok(());
            }
            filled += n;
        }
    }
    let client_version = match wire::decode_hello(&hello) {
        Ok(v) => v,
        Err(_) => return Ok(()),
    };
    write_half.write_all(&wire::encode_server_hello(VERSION, &local_model(shared)))?;
    if client_version != VERSION {
        let refusal = Response::Error(RemoteError {
            code: ErrorCode::UnsupportedVersion,
            message: format!("server speaks version {VERSION}, client sent {client_version}"),
        });
        wire::write_frame(&mut write_half, &wire::encode_response(&refusal))?;
        return Ok(());
    }

    // In-flight interpret budget for this connection: the reader admits
    // at submit, the writer releases after the response is written, so the
    // bound covers queue + solve + reply (see [`crate::budget`] for the
    // protocol and its loom model checks). The slot channel is bounded
    // too: a client that pipelines faster than its responses drain
    // eventually blocks the reader — TCP backpressure, not memory.
    let budget = Arc::new(ConnBudget::new(shared.config.max_inflight_per_conn));
    let (slot_tx, slot_rx) =
        mpsc::sync_channel::<Slot>(shared.config.max_inflight_per_conn * 2 + 16);
    let writer = {
        let budget = Arc::clone(&budget);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || writer_loop(&shared, &slot_rx, write_half, &budget))
    };

    let result = reader_loop(shared, stream, &slot_tx, &budget);
    drop(slot_tx);
    let _ = writer.join();
    if matches!(result, Ok(ReaderExit::DrainThenClose)) {
        // The writer has flushed the typed `Malformed` reply; before the
        // socket closes, briefly consume whatever the desynced client is
        // still sending. Unread bytes at close would turn the close into a
        // TCP RST, which discards in-flight data — including the reply the
        // client needs to see. Draining first lets the close send a FIN
        // and the reply win the race.
        drain_read_side(stream);
    }
    result.map(|_| ())
}

/// Bounds on the post-`Malformed` read-side drain: a desynced client gets
/// this much grace to finish its in-flight garbage, not an open-ended sink.
const DRAIN_CAP_BYTES: usize = 64 * 1024;
const DRAIN_WINDOW: Duration = Duration::from_millis(100);

fn drain_read_side(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let deadline = clock::now() + DRAIN_WINDOW;
    let mut sink = [0u8; 4096];
    let mut drained = 0;
    while drained < DRAIN_CAP_BYTES && clock::now() < deadline {
        match io::Read::read(stream, &mut sink) {
            Ok(0) => break, // client closed its write half: fully drained
            Ok(n) => drained += n,
            Err(_) => break, // timeout or error: best effort only
        }
    }
    let _ = stream.shutdown(Shutdown::Read);
}

/// How `reader_loop` ended, beyond I/O failure.
#[derive(Debug, PartialEq, Eq)]
enum ReaderExit {
    /// Clean end of stream (client closed, writer gone, shutdown).
    Closed,
    /// A corrupt frame was answered with a typed error; the read side
    /// should be drained before the connection closes so the reply
    /// outruns the close (see `drain_read_side`).
    DrainThenClose,
}

fn reader_loop<M: PredictionApi + Send + Sync + 'static>(
    shared: &Arc<Shared<M>>,
    stream: &mut TcpStream,
    slot_tx: &mpsc::SyncSender<Slot>,
    budget: &ConnBudget,
) -> io::Result<ReaderExit> {
    loop {
        let payload = match wire::read_frame(stream)? {
            FrameRead::Closed => return Ok(ReaderExit::Closed),
            FrameRead::Corrupt(e) => {
                // The stream lost sync: answer with a typed error (the
                // writer drains anything already in flight first) and stop
                // reading — the connection winds down.
                let _ = slot_tx.send(Slot::Ready(Box::new(Response::Error(RemoteError {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                }))));
                return Ok(ReaderExit::DrainThenClose);
            }
            FrameRead::Payload(payload) => payload,
        };
        let slot = match wire::decode_request(&payload) {
            Err(e) => {
                // The frame verified but the payload is malformed: the
                // stream is still in sync, so answer and keep serving.
                Slot::Ready(Box::new(Response::Error(RemoteError {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                })))
            }
            Ok(request) => handle_request(shared, request, budget),
        };
        if slot_tx.send(slot).is_err() {
            // Writer is gone (client stopped reading): nothing sensible
            // left to do with further requests.
            return Ok(ReaderExit::Closed);
        }
    }
}

fn handle_request<M: PredictionApi + Send + Sync + 'static>(
    shared: &Arc<Shared<M>>,
    request: Request,
    budget: &ConnBudget,
) -> Slot {
    match request {
        Request::Ping { nonce } => Slot::Ready(Box::new(Response::Pong { nonce })),
        Request::Stats => Slot::Ready(Box::new(Response::StatsReply(Box::new(
            shared.service.stats(),
        )))),
        Request::Metrics => Slot::Ready(Box::new(Response::MetricsReply(
            shared.service.stats().to_prometheus(),
        ))),
        Request::Interpret {
            class,
            deadline_ms,
            instance,
        } => {
            if !budget.try_admit() {
                return Slot::Ready(Box::new(Response::Error(busy(budget.limit()))));
            }
            // The trace span is minted here, right after frame decode, so
            // the request's queue stage covers its time on the wire tier
            // too (the channel hop into the worker pool).
            let span = RequestSpan::root();
            Slot::Pending(
                shared
                    .service
                    .submit_spanned(to_request(instance, class, deadline_ms, shared), span),
            )
        }
        Request::InterpretBatch { deadline_ms, items } => {
            let n = items.len();
            // Batch admission is idle-aware — a batch larger than the whole
            // budget is admitted on an idle connection (≤ MAX_BATCH is
            // already enforced by the decoder), so "retry after draining
            // responses" always eventually succeeds; see
            // [`ConnBudget::try_admit_batch`].
            if !budget.try_admit_batch(n) {
                return Slot::Ready(Box::new(Response::Error(busy(budget.limit()))));
            }
            // The batched fast lane: one membership probe per item, then a
            // single blocked kernel pass over the shared cache's shards —
            // not N sequential per-probe scans (see
            // [`InterpretationService::submit_batch`]).
            let requests = items
                .into_iter()
                .map(|(instance, class)| to_request(instance, class, deadline_ms, shared))
                .collect();
            // One frame-level span parents every item's span; the shared
            // kernel pass attributes to the frame itself.
            let frame_span = RequestSpan::root();
            Slot::PendingBatch(shared.service.submit_batch_spanned(requests, frame_span))
        }
        Request::SyncDigest {
            dim,
            num_classes,
            model_id,
        } => {
            let local = local_model(shared);
            let remote = ModelInfo {
                dim,
                num_classes,
                model_id,
            };
            if remote != local {
                return Slot::Ready(Box::new(Response::Error(model_mismatch(&remote, &local))));
            }
            match shared.service.store() {
                Some(store) => {
                    let digest = store.digest();
                    RequestSpan::detached().event(Stage::FabricDigest, digest.total());
                    Slot::Ready(Box::new(Response::SyncDigestReply(Box::new(digest))))
                }
                None => Slot::Ready(Box::new(Response::Error(no_store()))),
            }
        }
        Request::SyncPull {
            buckets,
            have,
            max_bytes,
        } => match shared.service.store() {
            Some(store) => {
                let delta = store.sync_delta(&buckets, &have, max_bytes as usize);
                RequestSpan::detached().event(Stage::FabricPull, delta.records);
                Slot::Ready(Box::new(Response::SyncPullReply(delta)))
            }
            None => Slot::Ready(Box::new(Response::Error(no_store()))),
        },
    }
}

/// The model declaration this server makes in its hello and holds sync
/// requests against.
fn local_model<M: PredictionApi + Send + Sync + 'static>(shared: &Arc<Shared<M>>) -> ModelInfo {
    ModelInfo {
        dim: shared.service.api().dim(),
        num_classes: shared.service.api().num_classes(),
        model_id: shared.config.model_id,
    }
}

fn model_mismatch(remote: &ModelInfo, local: &ModelInfo) -> RemoteError {
    RemoteError {
        code: ErrorCode::ModelMismatch,
        message: format!(
            "peer model {}x{} id {}, local {}x{} id {}",
            remote.dim,
            remote.num_classes,
            remote.model_id,
            local.dim,
            local.num_classes,
            local.model_id
        ),
    }
}

fn no_store() -> RemoteError {
    RemoteError {
        code: ErrorCode::NoStore,
        message: "this server runs without a durable region store".into(),
    }
}

fn busy(budget: usize) -> RemoteError {
    RemoteError {
        code: ErrorCode::Busy,
        message: format!("connection at its in-flight limit ({budget})"),
    }
}

/// Maps a wire request onto a service request: the request's own deadline
/// budget wins, else the server default.
fn to_request<M: PredictionApi + Send + Sync + 'static>(
    instance: Vector,
    class: usize,
    deadline_ms: u64,
    shared: &Arc<Shared<M>>,
) -> InterpretRequest {
    let request = InterpretRequest::new(instance, class);
    match deadline_ms {
        0 => match shared.config.default_deadline {
            Some(d) => request.with_timeout(d),
            None => request,
        },
        ms => request.with_timeout(Duration::from_millis(ms)),
    }
}

fn writer_loop<M: PredictionApi + Send + Sync + 'static>(
    shared: &Arc<Shared<M>>,
    slot_rx: &mpsc::Receiver<Slot>,
    stream: TcpStream,
    budget: &ConnBudget,
) {
    let mut out = BufWriter::new(stream);
    let mut broken = false;
    // Spans of the requests answered by the frame being written, so the
    // reply-write time can be recorded against each of them.
    let mut spans: Vec<u64> = Vec::new();
    while let Ok(slot) = slot_rx.recv() {
        spans.clear();
        let (response, completed) = match slot {
            Slot::Ready(response) => (*response, 0),
            Slot::Pending(ticket) => {
                let response = match ticket.wait() {
                    Ok(served) => {
                        spans.push(served.span);
                        Response::Interpreted(to_remote(served))
                    }
                    Err(e) => Response::Error(serve_error(&e)),
                };
                (response, 1)
            }
            Slot::PendingBatch(tickets) => {
                let n = tickets.len();
                let results = tickets
                    .into_iter()
                    .map(|ticket| {
                        ticket
                            .wait()
                            .map(|served| {
                                spans.push(served.span);
                                to_remote(served)
                            })
                            .map_err(|e| serve_error(&e))
                    })
                    .collect();
                (Response::Batch(results), n)
            }
        };
        // A broken pipe must not stop the drain: tickets still pending in
        // later slots are waited out (their in-flight accounting and the
        // service's stats ledger stay exact), the bytes just go nowhere.
        let write_start = clock::now();
        if !broken && wire::write_frame(&mut out, &wire::encode_response(&response)).is_err() {
            broken = true;
        }
        // Reply stage: encode + write of the answering frame, recorded for
        // every request it carries (a batch frame answers all its items).
        let write_end = clock::now();
        let write_time = write_end.saturating_duration_since(write_start);
        for &span in &spans {
            shared.service.record_reply(span, write_time, write_end);
        }
        // Budget released only after the reply is written (or abandoned):
        // the per-connection bound covers queue + solve + reply, as the
        // config documents — a stalled reader cannot spend freed budget
        // on new requests while its replies still occupy this writer.
        if completed > 0 {
            budget.release(completed);
        }
    }
    let _ = out.flush();
}

fn to_remote(served: Served) -> RemoteServed {
    RemoteServed {
        interpretation: served.interpretation,
        fingerprint: served.fingerprint,
        outcome: served.outcome,
        queries: served.queries,
        server_latency: served.latency,
        span: served.span,
    }
}

fn serve_error(e: &ServeError) -> RemoteError {
    let (code, message) = match e {
        ServeError::DeadlineExceeded => (ErrorCode::DeadlineExceeded, String::new()),
        ServeError::ServiceStopped => (ErrorCode::Stopped, String::new()),
        ServeError::Interpret(inner) => (ErrorCode::Interpret, inner.to_string()),
    };
    RemoteError { code, message }
}
