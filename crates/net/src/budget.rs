//! Per-connection in-flight admission budget.
//!
//! Each connection bounds how many interpret requests may be in flight at
//! once — queued, solving, or with a reply still unwritten. The reader
//! thread admits work ([`ConnBudget::try_admit`] /
//! [`ConnBudget::try_admit_batch`]); the writer thread releases it
//! ([`ConnBudget::release`]) only **after** the reply is written (or
//! abandoned on a broken pipe), so a stalled client cannot spend freed
//! budget on new requests while its replies still occupy the writer.
//!
//! # Concurrency contract
//!
//! Exactly **one reader** admits and **one writer** releases per budget —
//! the admission check-then-add is not atomic against other *admitters*,
//! only against the releasing writer. The release carries a release edge
//! and the admission check an acquire edge, so an admit that observes
//! freed budget also observes everything the writer did before freeing it
//! (the reply write). That edge — and the mutant that drops it — is
//! model-checked under `--cfg loom` in `tests/loom.rs` at the workspace
//! root; see `docs/CONCURRENCY.md` § connection budget.

use openapi_sync::atomic::{AtomicUsize, Ordering};

/// The reader/writer admission counter for one connection (see the module
/// docs for the single-admitter contract).
#[derive(Debug)]
pub struct ConnBudget {
    inflight: AtomicUsize,
    budget: usize,
}

impl ConnBudget {
    /// A fresh budget admitting up to `budget` in-flight requests.
    pub fn new(budget: usize) -> Self {
        ConnBudget {
            inflight: AtomicUsize::new(0),
            budget,
        }
    }

    /// The configured in-flight limit.
    pub fn limit(&self) -> usize {
        self.budget
    }

    /// Admits one request, or returns `false` when the connection is at
    /// its limit (reply with `Busy`).
    pub fn try_admit(&self) -> bool {
        // ordering: Acquire pairs with the Release in `release` — a load
        // that observes freed budget also observes the written reply that
        // freed it. The check-then-add is sound because only this reader
        // admits (module docs); the writer only ever *decreases* the count,
        // so the check is conservative, never over-admitting.
        if self.inflight.load(Ordering::Acquire) >= self.budget {
            return false;
        }
        // ordering: AcqRel — the add itself is the admission record the
        // writer's release pairs against; Acquire keeps it from floating
        // above the limit check on the admitting thread.
        self.inflight.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Admits a batch of `n` requests.
    ///
    /// A batch larger than the whole budget would be `Busy` forever if the
    /// bound were applied unconditionally; on an *idle* connection any
    /// protocol-legal batch is admitted, so "retry after draining
    /// responses" always eventually succeeds.
    pub fn try_admit_batch(&self, n: usize) -> bool {
        // ordering: Acquire — same pairing as `try_admit`.
        let current = self.inflight.load(Ordering::Acquire);
        if current > 0 && current + n > self.budget {
            return false;
        }
        // ordering: AcqRel — as in `try_admit`.
        self.inflight.fetch_add(n, Ordering::AcqRel);
        true
    }

    /// Releases `n` admissions. Call **after** the replies are written (or
    /// abandoned): the Release half of this RMW is what publishes the
    /// reply bytes to the next admission.
    pub fn release(&self, n: usize) {
        // ordering: AcqRel — Release publishes the written reply to the
        // paired Acquire in `try_admit`; Acquire orders the sub after the
        // writer's own prior releases when replies complete back-to-back.
        self.inflight.fetch_sub(n, Ordering::AcqRel);
    }

    /// Deliberately weakened [`ConnBudget::release`]: a Relaxed decrement
    /// publishes nothing, so an admit can observe freed budget without the
    /// reply that freed it. Exists only as a checker fixture — the loom
    /// suite asserts the model checker catches exactly this bug.
    #[cfg(loom)]
    pub fn release_relaxed(&self, n: usize) {
        // ordering: Relaxed — intentionally wrong; see the doc comment.
        self.inflight.fetch_sub(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_the_limit_then_reports_busy() {
        let b = ConnBudget::new(2);
        assert!(b.try_admit());
        assert!(b.try_admit());
        assert!(!b.try_admit());
        b.release(1);
        assert!(b.try_admit());
        assert_eq!(b.limit(), 2);
    }

    #[test]
    fn oversized_batch_is_admitted_only_when_idle() {
        let b = ConnBudget::new(4);
        // Idle: a batch larger than the whole budget goes through.
        assert!(b.try_admit_batch(7));
        // Busy: nothing else fits until the batch drains.
        assert!(!b.try_admit_batch(1));
        assert!(!b.try_admit());
        b.release(7);
        assert!(b.try_admit_batch(4));
    }
}
