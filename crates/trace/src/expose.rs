//! Prometheus-style text exposition builder.
//!
//! Always compiled (it formats counters the serving tier keeps anyway —
//! no ring involvement), so the `Metrics` wire request and the example
//! server's `--metrics-addr` listener work even with tracing compiled
//! out. The output follows the Prometheus text format, version 0.0.4:
//! `# HELP` / `# TYPE` headers, one sample per line, histograms as
//! cumulative `_bucket{le="..."}` series plus `_count`. See
//! `docs/OBSERVABILITY.md` for naming conventions and a transcript.

use std::fmt::Write as _;

/// Incremental builder for one exposition document. Metric families are
/// appended in call order; [`MetricsText::finish`] yields the document.
#[derive(Debug, Default)]
pub struct MetricsText {
    out: String,
}

impl MetricsText {
    /// Starts an empty document.
    pub fn new() -> MetricsText {
        MetricsText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Appends a monotone counter family with one unlabelled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a gauge family with one unlabelled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Appends a histogram family in seconds from log₂-nanosecond bucket
    /// counts (`counts[i]` = observations in `[2^i, 2^{i+1})` ns — the
    /// `LatencyHistogram` layout). `series` pairs an optional
    /// `label="value"` selector (empty for none) with its counts; each
    /// series renders cumulative `_bucket` samples (zero-run tails
    /// collapse into the final `+Inf`) plus `_count`. `_sum` is omitted:
    /// the log₂ buckets do not preserve it and an estimate would lie.
    pub fn histogram_log2ns(&mut self, name: &str, help: &str, series: &[(&str, &[u64])]) {
        self.header(name, help, "histogram");
        for (label, counts) in series {
            let sel = |le: &str| -> String {
                if label.is_empty() {
                    format!("{{le=\"{le}\"}}")
                } else {
                    format!("{{{label},le=\"{le}\"}}")
                }
            };
            let total: u64 = counts.iter().sum();
            let last_used = counts.iter().rposition(|&c| c != 0);
            let mut cum = 0u64;
            if let Some(last) = last_used {
                for (i, &c) in counts.iter().enumerate().take(last + 1) {
                    cum += c;
                    let le = upper_bound_secs(i);
                    let _ = writeln!(self.out, "{name}_bucket{} {cum}", sel(&le));
                }
            }
            let _ = writeln!(self.out, "{name}_bucket{} {total}", sel("+Inf"));
            let suffix = if label.is_empty() {
                String::new()
            } else {
                format!("{{{label}}}")
            };
            let _ = writeln!(self.out, "{name}_count{suffix} {total}");
        }
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Bucket `i`'s exclusive upper bound, `2^{i+1}` ns, rendered in seconds
/// (Prometheus `le` values are seconds by convention).
fn upper_bound_secs(i: usize) -> String {
    let ns = 2f64.powi(i as i32 + 1);
    format!("{:e}", ns / 1e9)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let mut m = MetricsText::new();
        m.counter("openapi_requests_total", "Requests admitted.", 42);
        m.gauge("openapi_cache_regions", "Regions cached.", 7);
        let doc = m.finish();
        assert!(doc.contains("# TYPE openapi_requests_total counter\n"));
        assert!(doc.contains("openapi_requests_total 42\n"));
        assert!(doc.contains("# TYPE openapi_cache_regions gauge\n"));
        assert!(doc.contains("openapi_cache_regions 7\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets_per_series() {
        let mut counts = [0u64; 48];
        counts[10] = 3; // [1024, 2048) ns
        counts[12] = 1; // [4096, 8192) ns
        let mut m = MetricsText::new();
        m.histogram_log2ns(
            "openapi_stage_latency_seconds",
            "Per-stage latency.",
            &[
                ("stage=\"queue\"", &counts),
                ("stage=\"solve\"", &[0u64; 48]),
            ],
        );
        let doc = m.finish();
        // Cumulative counts: 3 at the 2^11 ns bound, still 3 at 2^13 ns... 4 after.
        assert!(doc.contains("stage=\"queue\",le=\"2.048e-6\"} 3\n"));
        assert!(doc.contains("stage=\"queue\",le=\"8.192e-6\"} 4\n"));
        assert!(doc.contains("stage=\"queue\",le=\"+Inf\"} 4\n"));
        assert!(doc.contains("openapi_stage_latency_seconds_count{stage=\"queue\"} 4\n"));
        // An empty series still exposes +Inf and _count.
        assert!(doc.contains("stage=\"solve\",le=\"+Inf\"} 0\n"));
        assert!(doc.contains("openapi_stage_latency_seconds_count{stage=\"solve\"} 0\n"));
        // The zero tail collapsed: no bucket lines above the last used one.
        assert!(!doc.contains("le=\"1.6384e-5\""));
    }
}
