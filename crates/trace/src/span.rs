//! Request spans: the ids that tie a request's trace events together.
//!
//! A [`RequestSpan`] is minted at frame decode (`openapi-net::server`) or
//! at `submit` for in-process callers, carried on the job through the
//! serving path, and stamped onto every event the request emits. Layers
//! that cannot thread the handle explicitly (the kernel probe path in
//! `openapi-core`, the WAL in `openapi-store`) emit against the
//! *thread-current* span, installed with [`enter`] for the duration of a
//! job.
//!
//! With the `trace` feature off every function here is an inline no-op:
//! spans are id 0, nothing reaches the ring.

use crate::event::Stage;
use std::cell::Cell;

#[cfg(feature = "trace")]
use crate::{clock, event::TraceEvent};
#[cfg(feature = "trace")]
use openapi_sync::atomic::{AtomicU64, Ordering};

/// Span id allocator. Ids start at 1; 0 is the detached/process span.
#[cfg(feature = "trace")]
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// A handle naming one request's span: its id and its parent's id
/// (0 = root). Copyable and two words wide, so jobs carry it by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestSpan {
    id: u64,
    parent: u64,
}

impl RequestSpan {
    /// Mints a fresh root span and emits its [`Stage::Begin`] event.
    /// With tracing disabled, returns the detached span (id 0) for free.
    pub fn root() -> RequestSpan {
        RequestSpan::mint(0)
    }

    /// Mints a child of this span (batch items parent on the frame span)
    /// and emits its [`Stage::Begin`] event.
    pub fn child(&self) -> RequestSpan {
        RequestSpan::mint(self.id)
    }

    #[cfg(feature = "trace")]
    fn mint(parent: u64) -> RequestSpan {
        if !crate::enabled() {
            return RequestSpan::detached();
        }
        // ordering: Relaxed — a pure id allocator; uniqueness comes from
        // the RMW, and no other memory is published through it.
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let span = RequestSpan { id, parent };
        span.event(Stage::Begin, parent);
        span
    }

    #[cfg(not(feature = "trace"))]
    fn mint(_parent: u64) -> RequestSpan {
        RequestSpan::detached()
    }

    /// The detached process span (id 0): events that belong to no single
    /// request, like store fsync batches.
    pub const fn detached() -> RequestSpan {
        RequestSpan { id: 0, parent: 0 }
    }

    /// Reconstructs a span handle from a bare id (parent unknown), for
    /// layers that only receive the id over a channel or the wire — the
    /// reply writer, chiefly. Events emitted through it are root-parented.
    pub const fn from_id(id: u64) -> RequestSpan {
        RequestSpan { id, parent: 0 }
    }

    /// This span's id (0 when tracing is disabled or detached).
    pub const fn id(&self) -> u64 {
        self.id
    }

    /// The parent span's id (0 for roots).
    pub const fn parent(&self) -> u64 {
        self.parent
    }

    /// Emits one event on this span into the global ring. No-op when
    /// tracing is disabled (compile-time or runtime).
    #[cfg(feature = "trace")]
    pub fn event(&self, stage: Stage, payload: u64) {
        if !crate::enabled() {
            return;
        }
        crate::ring_push(&TraceEvent {
            span: self.id,
            parent: self.parent,
            stage,
            t_nanos: clock::nanos(),
            payload,
        });
    }

    /// Emits one event on this span (disabled build: inline no-op).
    #[cfg(not(feature = "trace"))]
    #[inline]
    pub fn event(&self, _stage: Stage, _payload: u64) {}

    /// Like [`event`](Self::event), but stamps the event with an instant
    /// the caller already read through [`crate::clock::now`] — stage
    /// timers end with a clock read in hand, and reusing it keeps the
    /// traced hot path one clock read per measurement instead of two.
    #[cfg(feature = "trace")]
    pub fn event_at(&self, stage: Stage, payload: u64, at: std::time::Instant) {
        if !crate::enabled() {
            return;
        }
        crate::ring_push(&TraceEvent {
            span: self.id,
            parent: self.parent,
            stage,
            t_nanos: clock::nanos_at(at),
            payload,
        });
    }

    /// Emits one stamped event (disabled build: inline no-op).
    #[cfg(not(feature = "trace"))]
    #[inline]
    pub fn event_at(&self, _stage: Stage, _payload: u64, _at: std::time::Instant) {}
}

thread_local! {
    /// The thread-current (span, parent) pair, for layers that cannot
    /// thread a handle. (0, 0) = detached.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Installs `span` as the thread-current span until the returned guard
/// drops (restoring the previous one — guards nest).
pub fn enter(span: RequestSpan) -> SpanGuard {
    let prev = CURRENT.with(|c| c.replace((span.id, span.parent)));
    SpanGuard { prev }
}

/// The thread-current span ([`RequestSpan::detached`] when none is set).
pub fn current() -> RequestSpan {
    let (id, parent) = CURRENT.with(Cell::get);
    RequestSpan { id, parent }
}

/// Emits one event on the thread-current span — the entry point for
/// layers below the job plumbing (kernel passes, WAL appends).
#[inline]
pub fn emit(stage: Stage, payload: u64) {
    if crate::enabled() {
        current().event(stage, payload);
    }
}

/// Restores the previous thread-current span on drop (see [`enter`]).
#[must_use = "dropping the guard immediately uninstalls the span"]
pub struct SpanGuard {
    prev: (u64, u64),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").finish_non_exhaustive()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_restore() {
        assert_eq!(current(), RequestSpan::detached());
        let outer = RequestSpan::root();
        let inner = outer.child();
        {
            let _g1 = enter(outer);
            assert_eq!(current().id(), outer.id());
            {
                let _g2 = enter(inner);
                assert_eq!(current().id(), inner.id());
            }
            assert_eq!(current().id(), outer.id());
        }
        assert_eq!(current(), RequestSpan::detached());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn children_parent_on_their_root() {
        let root = RequestSpan::root();
        let child = root.child();
        assert_ne!(root.id(), 0);
        assert_ne!(child.id(), root.id());
        assert_eq!(child.parent(), root.id());
        assert_eq!(root.parent(), 0);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_spans_are_all_detached() {
        assert_eq!(RequestSpan::root(), RequestSpan::detached());
        assert_eq!(RequestSpan::root().child(), RequestSpan::detached());
    }
}
