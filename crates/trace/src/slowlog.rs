//! The sampling slow-request log.
//!
//! The serving tier calls [`observe`] once per settled request with the
//! request's total latency and its per-stage nanosecond breakdown. When a
//! threshold is configured and the total crosses it, every `sample`-th
//! such request renders to stderr — as an indented stage timeline
//! ([`Format::Text`]) or as one JSON object per line ([`Format::Jsonl`]).
//!
//! With the `trace` feature off, [`observe`] is an inline no-op and the
//! configuration setters do nothing.

use std::time::Duration;

#[cfg(feature = "trace")]
use openapi_sync::atomic::{AtomicU64, Ordering};

/// The names of the per-stage slots in an [`observe`] breakdown, in
/// order: queue wait, probe, store lookup, solve, reply write. This is
/// the same taxonomy `StatsSnapshot`'s stage histograms use.
pub const STAGE_NAMES: [&str; 5] = ["queue", "probe", "store", "solve", "reply"];

/// Number of per-stage slots in a breakdown.
pub const STAGES: usize = STAGE_NAMES.len();

/// Slow-log output format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// A human-readable indented stage timeline.
    Text,
    /// One compact JSON object per logged request.
    Jsonl,
}

/// Threshold in nanos; 0 = disabled (the default).
#[cfg(feature = "trace")]
static SLOW_NS: AtomicU64 = AtomicU64::new(0);
/// Log every `n`-th over-threshold request; minimum 1.
#[cfg(feature = "trace")]
static SAMPLE: AtomicU64 = AtomicU64::new(1);
/// 0 = text, 1 = jsonl.
#[cfg(feature = "trace")]
static FORMAT: AtomicU64 = AtomicU64::new(0);
/// Over-threshold requests seen (drives sampling).
#[cfg(feature = "trace")]
static SEEN: AtomicU64 = AtomicU64::new(0);

/// Sets the slow-request threshold; `None` disables the log (default).
#[cfg(feature = "trace")]
pub fn set_threshold(threshold: Option<Duration>) {
    let ns = threshold.map_or(0, |d| {
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1)
    });
    // ordering: Relaxed — a configuration cell read by monitoring code.
    SLOW_NS.store(ns, Ordering::Relaxed);
}

/// Sets the sampling stride: log every `n`-th over-threshold request
/// (0 is treated as 1).
#[cfg(feature = "trace")]
pub fn set_sample(n: u64) {
    // ordering: Relaxed — a configuration cell read by monitoring code.
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Sets the output format (default [`Format::Text`]).
#[cfg(feature = "trace")]
pub fn set_format(format: Format) {
    let v = match format {
        Format::Text => 0,
        Format::Jsonl => 1,
    };
    // ordering: Relaxed — a configuration cell read by monitoring code.
    FORMAT.store(v, Ordering::Relaxed);
}

/// Reports one settled request. Logs it to stderr when the slow log is
/// enabled, `total` crosses the threshold, and sampling selects it.
#[cfg(feature = "trace")]
pub fn observe(span: u64, total: Duration, stage_ns: &[u64; STAGES]) {
    if !crate::enabled() {
        return;
    }
    // ordering: Relaxed — configuration cells; see the setters.
    let threshold = SLOW_NS.load(Ordering::Relaxed);
    let total_ns = u64::try_from(total.as_nanos()).unwrap_or(u64::MAX);
    if threshold == 0 || total_ns < threshold {
        return;
    }
    // ordering: Relaxed — the sampling counter tolerates races; at worst
    // two concurrent slow requests both log.
    let seen = SEEN.fetch_add(1, Ordering::Relaxed);
    // ordering: Relaxed — configuration cell.
    if !seen.is_multiple_of(SAMPLE.load(Ordering::Relaxed).max(1)) {
        return;
    }
    // ordering: Relaxed — configuration cell.
    let format = if FORMAT.load(Ordering::Relaxed) == 0 {
        Format::Text
    } else {
        Format::Jsonl
    };
    eprint!("{}", render(span, total_ns, stage_ns, format));
}

/// Disabled-build no-ops: the call sites compile away.
#[cfg(not(feature = "trace"))]
mod disabled {
    use super::*;

    /// No-op (tracing compiled out).
    #[inline]
    pub fn set_threshold(_threshold: Option<Duration>) {}
    /// No-op (tracing compiled out).
    #[inline]
    pub fn set_sample(_n: u64) {}
    /// No-op (tracing compiled out).
    #[inline]
    pub fn set_format(_format: Format) {}
    /// No-op (tracing compiled out).
    #[inline]
    pub fn observe(_span: u64, _total: Duration, _stage_ns: &[u64; STAGES]) {}
}
#[cfg(not(feature = "trace"))]
pub use disabled::{observe, set_format, set_sample, set_threshold};

/// Renders one slow-request record (pure; unit-tested directly).
pub fn render(span: u64, total_ns: u64, stage_ns: &[u64; STAGES], format: Format) -> String {
    match format {
        Format::Text => {
            let mut out = format!(
                "[openapi-trace] slow request span={} total={}\n",
                span,
                fmt_ns(total_ns)
            );
            let accounted: u64 = stage_ns.iter().sum();
            for (name, &ns) in STAGE_NAMES.iter().zip(stage_ns) {
                out.push_str(&format!("  {:<6} {}\n", name, fmt_ns(ns)));
            }
            out.push_str(&format!(
                "  {:<6} {}\n",
                "other",
                fmt_ns(total_ns.saturating_sub(accounted))
            ));
            out
        }
        Format::Jsonl => {
            let mut out = format!("{{\"span\":{},\"total_ns\":{}", span, total_ns);
            for (name, &ns) in STAGE_NAMES.iter().zip(stage_ns) {
                out.push_str(&format!(",\"{}_ns\":{}", name, ns));
            }
            out.push_str("}\n");
            out
        }
    }
}

/// Formats nanoseconds with a human-scale unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn text_timeline_is_indented_and_accounts_the_remainder() {
        let s = render(
            7,
            2_500_000,
            &[1_000_000, 200_000, 0, 1_000_000, 100_000],
            Format::Text,
        );
        assert!(s.starts_with("[openapi-trace] slow request span=7 total=2.500ms\n"));
        assert!(s.contains("\n  queue  1.000ms\n"));
        assert!(s.contains("\n  other  200.000us\n"));
    }

    #[test]
    fn jsonl_record_is_one_line_of_json() {
        let s = render(7, 1500, &[100, 200, 300, 400, 500], Format::Jsonl);
        assert_eq!(
            s,
            "{\"span\":7,\"total_ns\":1500,\"queue_ns\":100,\"probe_ns\":200,\
             \"store_ns\":300,\"solve_ns\":400,\"reply_ns\":500}\n"
        );
        assert_eq!(s.matches('\n').count(), 1);
    }
}
