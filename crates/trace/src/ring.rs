//! The lock-free MPSC trace ring: fixed capacity, overwrite-oldest,
//! allocation-free on the hot path.
//!
//! Every slot is six atomics — a sequence word plus the five
//! [`TraceEvent`] fields — claimed and committed with a per-slot seqlock
//! driven by a global ticket counter:
//!
//! * A writer takes ticket `i` (`head.fetch_add`), maps it to slot
//!   `i % CAP`, and **claims** the slot by CAS-ing the sequence word from
//!   the previous lap's committed value `2(i-CAP)+2` (or `0` on the first
//!   lap) to the odd in-progress value `2i+1`. A failed CAS means a later
//!   lap already owns the slot (the writer stalled for a whole lap) — the
//!   event is dropped and counted, never torn.
//! * The claim's owner stores the five fields, then **commits** with a
//!   release store of `2i+2`.
//! * The reader snapshots each slot with the seqlock read protocol: read
//!   the sequence word, read the fields, re-read the sequence word, and
//!   keep the event only if both reads saw the same even, non-zero value.
//!
//! The protocol is model-checked in `tests/loom.rs`
//! (`ring_commits_are_atomic`), and the seeded torn-commit mutant
//! `Ring::push_torn` (compiled only under `--cfg loom`, so not linkable
//! here) proves the checker would catch a mis-ordered
//! commit. See `docs/CONCURRENCY.md` and `docs/OBSERVABILITY.md`.

use crate::event::{Stage, TraceEvent};
use openapi_sync::atomic::{AtomicU64, Ordering};

/// One ring slot: the seqlock word plus the five event fields.
struct Slot {
    seq: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    stage: AtomicU64,
    t_nanos: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    /// Const seed for the `[Slot; CAP]` array initializer. Interior
    /// mutability in a `const` is deliberate here: the item is only ever
    /// used as an array-repeat element, never borrowed directly.
    #[allow(clippy::declare_interior_mutable_const)]
    const INIT: Slot = Slot {
        seq: AtomicU64::new(0),
        span: AtomicU64::new(0),
        parent: AtomicU64::new(0),
        stage: AtomicU64::new(0),
        t_nanos: AtomicU64::new(0),
        payload: AtomicU64::new(0),
    };
}

/// Emit/drop counters for monitoring the ring itself (exported as
/// `openapi_trace_events_total` / `openapi_trace_dropped_total`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Events successfully committed into the ring (including ones later
    /// overwritten by newer laps).
    pub emitted: u64,
    /// Events dropped because a whole lap overtook the writer's claim.
    pub dropped: u64,
}

/// A fixed-capacity MPSC trace ring (see the module docs). `CAP` is the
/// event capacity; the global ring uses [`crate::RING_CAP`], loom models
/// use tiny instances.
pub struct Ring<const CAP: usize> {
    head: AtomicU64,
    emitted: AtomicU64,
    dropped: AtomicU64,
    slots: [Slot; CAP],
}

impl<const CAP: usize> Default for Ring<CAP> {
    fn default() -> Self {
        Ring::new()
    }
}

impl<const CAP: usize> Ring<CAP> {
    /// Creates an empty ring. `const` so the global ring lives in a
    /// `static` under both the std and loom configurations.
    pub const fn new() -> Self {
        Ring {
            head: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: [Slot::INIT; CAP],
        }
    }

    /// The committed sequence value of ticket `i`'s predecessor on the
    /// same slot: the previous lap's commit, or 0 for the first lap.
    fn prev_seq(ticket: u64) -> u64 {
        let cap = CAP as u64;
        if ticket < cap {
            0
        } else {
            2 * (ticket - cap) + 2
        }
    }

    /// Appends one event. Returns `false` when the event was dropped
    /// because a newer lap overtook this writer's slot claim (the
    /// overwrite-oldest policy under extreme producer skew); the drop is
    /// counted in [`Ring::stats`]. Lock-free and allocation-free.
    pub fn push(&self, ev: &TraceEvent) -> bool {
        let (ticket, slot) = match self.claim(ev) {
            Some(claimed) => claimed,
            None => return false,
        };
        self.store_fields(slot, ev);
        // ordering: Release — the commit publishes the field stores above:
        // a reader whose second seq read returns this even value acquired
        // it, so the fields it read are exactly this event's. Verified:
        // `ring_commits_are_atomic` in tests/loom.rs.
        slot.seq.store(2 * ticket + 2, Ordering::Release);
        true
    }

    /// Takes a ticket and claims its slot; `None` (plus a counted drop)
    /// when the slot already belongs to a newer lap.
    fn claim(&self, _ev: &TraceEvent) -> Option<(u64, &Slot)> {
        // ordering: Relaxed — the ticket counter only allocates indices;
        // the slot's own seq CAS is what orders access to the fields.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % CAP as u64) as usize];
        // ordering: AcqRel on success — Acquire pairs with the previous
        // lap's committing Release store so this writer's field stores
        // happen-after the old fields are fully published (no cross-lap
        // tearing); Release makes the odd claim value visible before the
        // field stores below, so a reader that observes a new field also
        // observes an in-progress or newer seq and discards the slot.
        // Failure is Relaxed: a lost claim only increments a counter.
        if slot
            .seq
            .compare_exchange(
                Self::prev_seq(ticket),
                2 * ticket + 1,
                // ordering: AcqRel success / Relaxed failure — see above.
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            // ordering: Relaxed — monitoring counter.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // ordering: Relaxed — monitoring counter.
        self.emitted.fetch_add(1, Ordering::Relaxed);
        Some((ticket, slot))
    }

    /// Stores the five event fields into a claimed slot.
    fn store_fields(&self, slot: &Slot, ev: &TraceEvent) {
        // ordering: Release on each field — pairs with the reader's
        // Acquire field loads: a reader that observes one of these stores
        // joins this writer's history, which already contains the odd
        // claim store, so its seq re-read cannot validate against the
        // previous lap's value. (On hardware this is the store side of
        // the seqlock; loom models the same edge with vector clocks.)
        for (cell, value) in [
            (&slot.span, ev.span),
            (&slot.parent, ev.parent),
            (&slot.stage, ev.stage as u64),
            (&slot.t_nanos, ev.t_nanos),
            (&slot.payload, ev.payload),
        ] {
            // ordering: Release — the field-store side described above.
            cell.store(value, Ordering::Release);
        }
    }

    /// A deliberately torn `push`: it commits the even sequence value
    /// *before* storing the fields, so a concurrent reader can validate a
    /// slot whose fields are still the previous event's. Compiled only
    /// under `--cfg loom` as the seeded mutant the model checker must
    /// catch (`ring_checker_catches_torn_commit` in tests/loom.rs).
    #[cfg(loom)]
    pub fn push_torn(&self, ev: &TraceEvent) -> bool {
        let (ticket, slot) = match self.claim(ev) {
            Some(claimed) => claimed,
            None => return false,
        };
        // ordering: (mutant fixture) the commit deliberately precedes the
        // field stores — the exact bug the real `push` forbids.
        slot.seq.store(2 * ticket + 2, Ordering::Release);
        self.store_fields(slot, ev);
        true
    }

    /// Snapshots every committed event, oldest first (by timestamp).
    /// Slots mid-write or overwritten during the scan are skipped — the
    /// seqlock validation guarantees no torn event is ever returned.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(CAP);
        for slot in &self.slots {
            // ordering: Acquire — pairs with the committing Release store
            // so the field loads below see at least that commit's values.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            // ordering: Acquire on each field — see `store_fields`: if a
            // load observes a *newer* writer's store it joins that
            // writer's history (which includes its odd claim), so the
            // re-read below sees seq != s1 and discards the slot.
            let [span, parent, stage, t_nanos, payload] = [
                &slot.span,
                &slot.parent,
                &slot.stage,
                &slot.t_nanos,
                &slot.payload,
            ]
            // ordering: Acquire — the field-load side described above.
            .map(|cell| cell.load(Ordering::Acquire));
            // ordering: Relaxed — the Acquire field loads above order this
            // re-read after them; coherence then forbids it from seeing a
            // value older than any writer those loads observed.
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // overwritten mid-read
            }
            let Some(stage) = Stage::from_u64(stage) else {
                continue;
            };
            out.push(TraceEvent {
                span,
                parent,
                stage,
                t_nanos,
                payload,
            });
        }
        out.sort_by_key(|e| e.t_nanos);
        out
    }

    /// Emit/drop counters (monitoring; relaxed reads).
    pub fn stats(&self) -> RingStats {
        RingStats {
            // ordering: Relaxed — monitoring counters.
            emitted: self.emitted.load(Ordering::Relaxed),
            // ordering: Relaxed — monitoring counters.
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(span: u64, stage: Stage, t: u64) -> TraceEvent {
        TraceEvent {
            span,
            parent: 0,
            stage,
            t_nanos: t,
            payload: span,
        }
    }

    #[test]
    fn pushed_events_come_back_in_timestamp_order() {
        let ring = Ring::<8>::new();
        assert!(ring.push(&ev(2, Stage::Queue, 20)));
        assert!(ring.push(&ev(1, Stage::Begin, 10)));
        assert!(ring.push(&ev(3, Stage::Finish, 30)));
        let got = ring.snapshot();
        assert_eq!(got.len(), 3);
        assert!(got.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
        assert_eq!(got[0].span, 1);
        assert_eq!(
            ring.stats(),
            RingStats {
                emitted: 3,
                dropped: 0
            }
        );
    }

    #[test]
    fn the_ring_overwrites_oldest_when_full() {
        let ring = Ring::<4>::new();
        for i in 0..10u64 {
            assert!(ring.push(&ev(i + 1, Stage::Begin, i)));
        }
        let got = ring.snapshot();
        // Only the newest CAP events survive.
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|e| e.span).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(ring.stats().emitted, 10);
    }

    #[test]
    fn concurrent_pushes_never_produce_a_torn_event() {
        let ring = std::sync::Arc::new(Ring::<16>::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..200 {
                        ring.push(&ev(t * 1000 + i + 1, Stage::Queue, i));
                    }
                });
            }
        });
        // Every surviving event is internally consistent (span == payload
        // by construction) — the seqlock never serves a mix of writers.
        for e in ring.snapshot() {
            assert_eq!(e.span, e.payload, "torn event escaped the seqlock");
        }
        let stats = ring.stats();
        assert_eq!(stats.emitted + stats.dropped, 800);
    }
}
