//! The trace event model: stages and the fixed-width [`TraceEvent`] record.
//!
//! Every observable step of a request's life is one [`Stage`]. An event is
//! five words — span id, parent span id, stage, monotonic nanos, payload —
//! so it packs into a handful of atomics in the ring (`ring.rs`) and never
//! allocates on the hot path. The payload's meaning is per-stage (see
//! [`Stage`]'s variant docs and `docs/OBSERVABILITY.md`).

/// One step in a request's life. Discriminants are stable across builds —
/// they are what the ring stores and what JSONL slow logs print.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Span minted (at frame decode, or at `submit` for local callers).
    /// Payload: the parent span id's low bits for batch children, else 0.
    Begin = 1,
    /// Queue wait between `submit` and a worker picking the job up.
    /// Payload: the wait in nanoseconds.
    Queue = 2,
    /// Black-box membership probe against the region cache.
    /// Payload: model queries spent by the probe.
    Probe = 3,
    /// One blocked kernel pass over packed boundaries (emitted by
    /// `openapi-core` under the current span). Payload: rows scanned.
    KernelPass = 4,
    /// The probe hit a cached region. Payload: 0.
    CacheHit = 5,
    /// The durable store was consulted after a cache miss.
    /// Payload: 1 on a hit, 0 on a miss.
    StoreLookup = 6,
    /// This job won the class election and will solve. Payload: 0.
    CoalesceLead = 7,
    /// This job parked behind an in-flight leader. Payload: 0.
    CoalesceWait = 8,
    /// A fresh region solve ran. Payload: model queries spent.
    Solve = 9,
    /// An interpretation was appended to the WAL (admission accepted).
    /// Payload: the frame length in bytes.
    WalAppend = 10,
    /// The store flusher fsynced a batch (detached span 0).
    /// Payload: appends in the batch.
    Fsync = 11,
    /// The reply frame was written to the socket. Payload: the write
    /// duration in nanoseconds.
    Reply = 12,
    /// The request settled. Payload: outcome code (0 ok, 1 failed,
    /// 2 deadline expired).
    Finish = 13,
    /// An anti-entropy digest was served to (or fetched from) a peer.
    /// Payload: the digest's total record count.
    FabricDigest = 14,
    /// A sync pull shipped record frames to (or from) a peer.
    /// Payload: records in the delta.
    FabricPull = 15,
    /// A record pulled from a peer passed validation and was ingested.
    /// Payload: the record frame length in bytes.
    FabricIngest = 16,
    /// The drift detector invalidated a stale region: its cache entries
    /// were evicted and a tombstone was queued to the durable store.
    /// Payload: the stale region's fingerprint.
    Invalidate = 17,
    /// A request whose region was invalidated for drift completed a fresh
    /// solve against the live API. Payload: the new region's fingerprint.
    Resolve = 18,
}

impl Stage {
    /// Decodes a stored discriminant; `None` for values no [`Stage`] uses
    /// (a torn ring slot, or a record from a different build).
    pub fn from_u64(v: u64) -> Option<Stage> {
        Some(match v {
            1 => Stage::Begin,
            2 => Stage::Queue,
            3 => Stage::Probe,
            4 => Stage::KernelPass,
            5 => Stage::CacheHit,
            6 => Stage::StoreLookup,
            7 => Stage::CoalesceLead,
            8 => Stage::CoalesceWait,
            9 => Stage::Solve,
            10 => Stage::WalAppend,
            11 => Stage::Fsync,
            12 => Stage::Reply,
            13 => Stage::Finish,
            14 => Stage::FabricDigest,
            15 => Stage::FabricPull,
            16 => Stage::FabricIngest,
            17 => Stage::Invalidate,
            18 => Stage::Resolve,
            _ => return None,
        })
    }

    /// The stage's lowercase name, as used in metric labels and slow logs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Begin => "begin",
            Stage::Queue => "queue",
            Stage::Probe => "probe",
            Stage::KernelPass => "kernel_pass",
            Stage::CacheHit => "cache_hit",
            Stage::StoreLookup => "store_lookup",
            Stage::CoalesceLead => "coalesce_lead",
            Stage::CoalesceWait => "coalesce_wait",
            Stage::Solve => "solve",
            Stage::WalAppend => "wal_append",
            Stage::Fsync => "fsync",
            Stage::Reply => "reply",
            Stage::Finish => "finish",
            Stage::FabricDigest => "fabric_digest",
            Stage::FabricPull => "fabric_pull",
            Stage::FabricIngest => "fabric_ingest",
            Stage::Invalidate => "invalidate",
            Stage::Resolve => "resolve",
        }
    }
}

/// One structured trace event (see the module docs). `span == 0` marks a
/// detached process-level event (e.g. a store fsync batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The request span this event belongs to (0 = detached).
    pub span: u64,
    /// The span's parent (0 = root). Batch items parent on the frame span.
    pub parent: u64,
    /// What happened.
    pub stage: Stage,
    /// Monotonic nanoseconds since the process trace epoch
    /// ([`crate::clock::nanos`]).
    pub t_nanos: u64,
    /// Stage-specific payload; see [`Stage`].
    pub payload: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_discriminants_round_trip() {
        for v in 0..=20u64 {
            if let Some(s) = Stage::from_u64(v) {
                assert_eq!(s as u64, v);
                assert!(!s.name().is_empty());
            }
        }
        assert_eq!(Stage::from_u64(0), None);
        assert_eq!(Stage::from_u64(19), None);
    }
}
