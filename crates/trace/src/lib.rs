#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Structured request tracing and metrics exposition for the serving path.
//!
//! The paper's evaluation axes — query count, interpretation latency,
//! consistency (Cong et al., ICDE 2020) — are per-request quantities, but
//! until this crate the stack only kept aggregates. `openapi-trace` adds
//! the per-request view without touching the hot path's allocation or
//! locking profile:
//!
//! * **[`RequestSpan`]** — a two-word handle minted at frame decode
//!   (`openapi-net`) or at `submit`, carried on the job, and stamped on
//!   every event. Batch items are children of the frame's span.
//! * **The event ring** ([`ring::Ring`]) — a fixed-capacity lock-free
//!   MPSC ring of [`TraceEvent`]s (span, parent, stage, monotonic nanos,
//!   payload). Writers claim-and-commit with a per-slot seqlock; the ring
//!   overwrites oldest and never blocks or tears (model-checked in
//!   `tests/loom.rs`). [`snapshot_events`] drains a consistent view.
//! * **[`clock`]** — the serving tier's single `Instant` source
//!   (lint-enforced), so stage timings and trace timestamps share an
//!   epoch.
//! * **[`slowlog`]** — a sampling slow-request log: requests over a
//!   configurable threshold render as an indented stage timeline (or
//!   JSONL) on stderr.
//! * **[`expose`]** — a Prometheus-text builder used by the `Metrics`
//!   wire request and the example server's `--metrics-addr` listener.
//!
//! Everything event-related sits behind the **`trace` cargo feature**
//! (default on). With it off, spans are id 0, [`emit`] and friends are
//! inline no-ops, and the ring is not compiled; [`clock`] and [`expose`]
//! remain, so dependent crates need no features of their own. At runtime,
//! [`set_runtime_enabled`] is a kill switch used by the overhead bench.
//!
//! See `docs/OBSERVABILITY.md` for the event model, stage taxonomy, and
//! exposition conventions.

pub mod clock;
mod event;
pub mod expose;
#[cfg(feature = "trace")]
pub mod ring;
pub mod slowlog;
mod span;

pub use event::{Stage, TraceEvent};
pub use span::{current, emit, enter, RequestSpan, SpanGuard};

#[cfg(feature = "trace")]
pub use ring::RingStats;

/// Emit/drop counters mirror for the disabled build (always zero).
#[cfg(not(feature = "trace"))]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Events committed (always 0: the ring is compiled out).
    pub emitted: u64,
    /// Events dropped (always 0: the ring is compiled out).
    pub dropped: u64,
}

#[cfg(feature = "trace")]
use openapi_sync::atomic::{AtomicBool, Ordering};

/// Capacity of the global event ring, in events (~192 KiB of atomics).
#[cfg(feature = "trace")]
pub const RING_CAP: usize = 4096;

#[cfg(feature = "trace")]
static RING: ring::Ring<RING_CAP> = ring::Ring::new();

/// Runtime kill switch; `true` at startup. The overhead bench flips it to
/// measure the same binary with and without tracing.
#[cfg(feature = "trace")]
static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether tracing is live: the `trace` feature is compiled in *and* the
/// runtime switch is on. Event emission checks this once per call.
#[cfg(feature = "trace")]
#[inline]
pub fn enabled() -> bool {
    // ordering: Relaxed — a monitoring kill switch; emission order versus
    // the flip is immaterial (a straggling event is harmless).
    RUNTIME_ENABLED.load(Ordering::Relaxed)
}

/// Whether tracing is live (`false`: compiled out).
#[cfg(not(feature = "trace"))]
#[inline]
pub fn enabled() -> bool {
    false
}

/// Flips the runtime kill switch (no-op when tracing is compiled out).
/// Used by `net_throughput` to measure enabled-vs-disabled overhead in
/// one binary.
#[cfg(feature = "trace")]
pub fn set_runtime_enabled(on: bool) {
    // ordering: Relaxed — see `enabled`.
    RUNTIME_ENABLED.store(on, Ordering::Relaxed);
}

/// Flips the runtime kill switch (no-op: tracing is compiled out).
#[cfg(not(feature = "trace"))]
pub fn set_runtime_enabled(_on: bool) {}

/// Pushes one event into the global ring (crate-internal hot path).
#[cfg(feature = "trace")]
pub(crate) fn ring_push(ev: &TraceEvent) {
    RING.push(ev);
}

/// Snapshots the global ring's committed events, oldest first. Empty when
/// tracing is compiled out.
#[cfg(feature = "trace")]
pub fn snapshot_events() -> Vec<TraceEvent> {
    RING.snapshot()
}

/// Snapshots the global ring (tracing compiled out: always empty).
#[cfg(not(feature = "trace"))]
pub fn snapshot_events() -> Vec<TraceEvent> {
    Vec::new()
}

/// The global ring's emit/drop counters.
#[cfg(feature = "trace")]
pub fn ring_stats() -> RingStats {
    RING.stats()
}

/// The global ring's emit/drop counters (tracing compiled out: zeros).
#[cfg(not(feature = "trace"))]
pub fn ring_stats() -> RingStats {
    RingStats::default()
}

#[cfg(all(test, not(loom), feature = "trace"))]
mod tests {
    use super::*;

    // One test body: both halves toggle the process-global kill switch,
    // so running them in parallel test threads would race.
    #[test]
    fn spans_thread_events_into_the_global_ring_and_the_kill_switch_stops_them() {
        the_kill_switch_suppresses_emission();

        let span = RequestSpan::root();
        span.event(Stage::Queue, 123);
        {
            let _g = enter(span);
            emit(Stage::KernelPass, 256);
        }
        let events = snapshot_events();
        let mine: Vec<_> = events.iter().filter(|e| e.span == span.id()).collect();
        let stages: Vec<_> = mine.iter().map(|e| e.stage).collect();
        assert!(stages.contains(&Stage::Begin));
        assert!(stages.contains(&Stage::Queue));
        assert!(stages.contains(&Stage::KernelPass));
        assert!(
            mine.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos),
            "span timestamps must be monotonic"
        );
    }

    fn the_kill_switch_suppresses_emission() {
        set_runtime_enabled(false);
        let span = RequestSpan::root();
        span.event(Stage::Queue, 1);
        set_runtime_enabled(true);
        assert_eq!(span.id(), 0, "disabled spans are detached");
        // Nothing reached the ring while the switch was off: no detached
        // Queue event with our payload exists.
        assert!(!snapshot_events()
            .iter()
            .any(|e| e.span == 0 && e.stage == Stage::Queue && e.payload == 1));
    }
}
