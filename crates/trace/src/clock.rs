//! The serving tier's single time source.
//!
//! `cargo xtask lint` forbids direct `Instant::now()`/`SystemTime` use in
//! the serving crates (`openapi-serve`, `openapi-net`, `openapi-store`)
//! outside this module, so every latency measurement flows through one
//! place — the hook point for a future virtual clock, and the guarantee
//! that trace timestamps and stage histograms share an epoch.
//!
//! [`nanos`] timestamps are monotonic nanoseconds since the process trace
//! epoch (captured on first use), so events recorded by different threads
//! order consistently.

use openapi_sync::Mutex;
use std::cell::Cell;
use std::time::Instant;

/// Reads the monotonic clock. The serving crates' one legal spelling of
/// `Instant::now()` (enforced by the `clock` lint rule).
#[inline]
pub fn now() -> Instant {
    // clock: this module is the clock.
    Instant::now()
}

/// The process trace epoch: the first `nanos()` caller captures it; every
/// thread then timestamps relative to the same instant. A mutex (not a
/// lazy static) keeps the facade's loom shims usable here, and each thread
/// caches the epoch after one lookup so the lock is cold.
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

thread_local! {
    static EPOCH_CACHE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Monotonic nanoseconds since the process trace epoch. Saturates at
/// `u64::MAX` (~584 years of uptime).
#[inline]
pub fn nanos() -> u64 {
    nanos_at(now())
}

/// Converts an instant already read through [`now`] into nanoseconds
/// since the process trace epoch — the cheap half of [`nanos`]. Call
/// sites that just timed a stage stamp their event with the reading they
/// have instead of paying a second clock read (the clock read is ~90% of
/// a `nanos()` call). An instant predating the epoch (only possible for
/// the reading that races the very first epoch capture) clamps to 0.
#[inline]
pub fn nanos_at(at: Instant) -> u64 {
    let epoch = EPOCH_CACHE.with(|c| match c.get() {
        Some(e) => e,
        None => {
            let e = *EPOCH.lock().get_or_insert_with(now);
            c.set(Some(e));
            e
        }
    });
    u64::try_from(at.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_is_monotonic_within_and_across_threads() {
        let a = nanos();
        let b = std::thread::spawn(nanos).join().unwrap();
        let c = nanos();
        assert!(a <= c, "same-thread timestamps must not run backwards");
        // The spawned read happened between `a` and the join; its epoch is
        // shared, so it lands inside the same timeline.
        assert!(b <= nanos());
    }
}
