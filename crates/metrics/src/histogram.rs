//! Fixed-bucket latency histogram for concurrent services.
//!
//! The serving tier (`openapi-serve`) needs request-latency quantiles that
//! many worker threads can record into without locks and without unbounded
//! memory. [`LatencyHistogram`] uses the classic fixed log₂ bucket layout:
//! bucket `i` covers durations in `[2^i, 2^{i+1})` nanoseconds, so 48
//! atomic counters span 1 ns to ~78 h with ≤ 2× relative error on any
//! reported quantile — amply precise for p50/p99 dashboards, and `record`
//! is a single relaxed `fetch_add`.

use openapi_sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: `[2^0, 2^1) ns` … `[2^47, ∞) ns` (~78 hours).
pub const LATENCY_BUCKETS: usize = 48;

/// A lock-free fixed-bucket duration histogram (see the module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Bucket index of a duration: `floor(log2(nanos))`, clamped to the
    /// fixed range (0 ns records into bucket 0; ≥ 2^47 ns into the last).
    fn bucket_of(duration: Duration) -> usize {
        let nanos = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        let log2 = 63 - nanos.max(1).leading_zeros() as usize;
        log2.min(LATENCY_BUCKETS - 1)
    }

    /// Records one observation. Lock-free; callable from any thread.
    pub fn record(&self, duration: Duration) {
        // ordering: Relaxed suffices — each bucket is an independent counter
        // and the RMW can never lose an increment; readers that need "all
        // records from thread T" obtain it from a join/channel edge, not
        // from the counter itself. Verified: `histogram_records_are_never_lost`
        // in tests/loom.rs.
        self.buckets[Self::bucket_of(duration)].fetch_add(1, Ordering::Relaxed);
    }

    /// A deliberately torn `record`: a Relaxed load+store instead of the
    /// atomic RMW. Compiled only under `--cfg loom` as the seeded mutant the
    /// checker must catch (`histogram_checker_catches_torn_record` in
    /// tests/loom.rs); never part of a normal build.
    #[cfg(loom)]
    pub fn record_torn(&self, duration: Duration) {
        let bucket = &self.buckets[Self::bucket_of(duration)];
        // ordering: (mutant fixture) intentionally non-atomic increment.
        bucket.store(bucket.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    ///
    /// Relaxed per-bucket reads: concurrent with writers the sum may miss
    /// in-flight records (it is a monitoring statistic), but it is exact
    /// once all recording threads are joined or otherwise happen-before the
    /// read.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — see above; per-bucket staleness only.
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The quantile `q ∈ [0, 1]`, linearly interpolated within the bucket
    /// holding the rank-`⌈q·n⌉` observation (see [`quantile_from_buckets`]).
    /// `None` when the histogram is empty.
    ///
    /// Concurrent `record`s during the scan can skew the answer by the
    /// in-flight observations — quantiles are a monitoring statistic, not a
    /// synchronization point.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        quantile_from_buckets(&self.snapshot(), q)
    }

    /// Median latency (`quantile(0.5)`).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.5)
    }

    /// 99th-percentile latency (`quantile(0.99)`).
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// The per-bucket counts (for exporting/debugging).
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            // ordering: Relaxed — monitoring statistic; see `count`.
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// The quantile `q ∈ [0, 1]` of a log₂ bucket-count array (the
/// [`LatencyHistogram::snapshot`] layout: `counts[i]` = observations in
/// `[2^i, 2^{i+1})` ns), linearly interpolated within the bucket that
/// holds the rank-`⌈q·n⌉` observation. `None` when all counts are zero.
///
/// Interpolation matters at the edges: an all-sub-microsecond workload
/// whose observations share one bucket used to report that bucket's
/// upper bound for *every* quantile (a 2× overstatement); interpolating
/// by rank position spreads the quantiles across the bucket instead. The
/// top bucket interpolates toward its saturating `2^48` ns bound, never
/// beyond.
///
/// A free function (not a method) so consumers holding only a wire-copied
/// bucket array — the remote stats report, `StatsSnapshot::Display` — can
/// reconstruct quantiles without a live histogram.
pub fn quantile_from_buckets(counts: &[u64; LATENCY_BUCKETS], q: f64) -> Option<Duration> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let lo = 2u64.saturating_pow(i as u32);
            let hi = 2u64.saturating_pow(i as u32 + 1);
            // Rank position within this bucket, in (0, c]: interpolate
            // linearly from the bucket's lower bound; position == c lands
            // exactly on the (exclusive) upper bound, preserving the old
            // conservative estimate for bucket-filling quantiles.
            let pos = rank - seen;
            let ns = lo as f64 + (hi - lo) as f64 * pos as f64 / c as f64;
            return Some(Duration::from_nanos(ns as u64));
        }
        seen += c;
    }
    // Unreachable when the counts are stable (rank <= total), but
    // concurrent recording can move the total under us; clamp to the top.
    Some(Duration::from_nanos(
        2u64.saturating_pow(LATENCY_BUCKETS as u32),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantiles_bound_the_true_value_within_one_bucket() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        // p50 is the 5th observation (50 µs): its bucket is [2^15, 2^16) ns,
        // so the reported upper bound is 65.536 µs — within 2× of the truth.
        let p50 = h.p50().unwrap();
        assert!(p50 >= Duration::from_micros(50) && p50 <= Duration::from_micros(66));
        // p99 lands on the 1 ms outlier: bucket upper bound within 2×.
        let p99 = h.p99().unwrap();
        assert!(p99 >= Duration::from_micros(1000) && p99 <= Duration::from_micros(2048));
        // Quantiles are monotone in q.
        assert!(h.quantile(0.1).unwrap() <= p50 && p50 <= p99);
    }

    #[test]
    fn extremes_clamp_into_the_fixed_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1_000_000));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0).unwrap(), Duration::from_nanos(2));
        assert_eq!(
            h.quantile(1.0).unwrap(),
            Duration::from_nanos(2u64.saturating_pow(LATENCY_BUCKETS as u32))
        );
    }

    #[test]
    fn sub_bucket_quantiles_interpolate_instead_of_snapping_to_the_bound() {
        // Regression: an all-sub-microsecond workload landing in a single
        // bucket used to report the bucket's upper bound (128 ns here) for
        // every quantile. Interpolation spreads ranks across [64, 128).
        let h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(Duration::from_nanos(100));
        }
        let p50 = h.p50().unwrap();
        assert_eq!(p50, Duration::from_nanos(96), "64 + 64 * 500/1000");
        let p99 = h.p99().unwrap();
        assert!(p99 > p50 && p99 < Duration::from_nanos(128));
        // Only a full-bucket rank reaches the upper bound exactly.
        assert_eq!(h.quantile(1.0).unwrap(), Duration::from_nanos(128));
    }

    #[test]
    fn top_bucket_quantiles_saturate_at_the_fixed_range_ceiling() {
        // Observations beyond the histogram's range all clamp into the
        // last bucket [2^47, 2^48) ns; quantiles interpolate inside it and
        // never exceed the saturating 2^48 ns ceiling.
        let h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(Duration::from_secs(1_000_000));
        }
        let lo = Duration::from_nanos(2u64.pow(47));
        let hi = Duration::from_nanos(2u64.pow(48));
        let p50 = h.p50().unwrap();
        assert!(
            p50 > lo && p50 < hi,
            "p50 interpolates inside the top bucket"
        );
        assert_eq!(h.quantile(1.0).unwrap(), hi);
        // From raw buckets too (the wire/report path).
        let snap = h.snapshot();
        assert_eq!(quantile_from_buckets(&snap, 0.5), Some(p50));
        assert_eq!(quantile_from_buckets(&[0; LATENCY_BUCKETS], 0.5), None);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(Duration::from_nanos((t * 1000 + i) as u64 + 1));
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.snapshot().iter().sum::<u64>(), 8000);
    }
}
