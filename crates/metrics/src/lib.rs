#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! The paper's evaluation metrics (§V) and report writers.
//!
//! | Paper | Module | Used by |
//! |---|---|---|
//! | CPP / NLCI feature-alteration effectiveness (Fig. 3) | [`effectiveness`] | `exp-fig3` |
//! | Cosine-similarity consistency vs nearest neighbour (Fig. 4) | [`consistency`] | `exp-fig4` |
//! | Region Difference over a method's sample set (Fig. 5) | [`region_diff`] | `exp-fig5` |
//! | Weight Difference of core parameters (Fig. 6) | [`weight_diff`] | `exp-fig6` |
//! | L1Dist exactness against ground truth (Fig. 7) | [`exactness`] | `exp-fig7` |
//! | Heatmap dumps of decision features (Fig. 2) | [`heatmap`] | `exp-fig2` |
//! | Sample-set reconstruction per method | [`samples`] | Figs. 5–6 |
//! | CSV / fixed-width table output | [`report`] | all binaries |
//! | Lock-free latency histogram (p50/p99) | [`histogram`] | `openapi-serve` |
//!
//! Ground-truth-dependent metrics (RD, WD, L1Dist) take a
//! [`openapi_api::GroundTruthOracle`]; interpreters themselves never see it.

pub mod consistency;
pub mod effectiveness;
pub mod exactness;
pub mod heatmap;
pub mod histogram;
pub mod region_diff;
pub mod report;
pub mod samples;
pub mod weight_diff;

pub use effectiveness::{AlterationCurve, EffectivenessConfig};
pub use exactness::l1_dist;
pub use histogram::{quantile_from_buckets, LatencyHistogram, LATENCY_BUCKETS};
pub use region_diff::region_difference;
pub use weight_diff::weight_difference;
