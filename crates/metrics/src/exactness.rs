//! Exactness (paper §V-D, Fig. 7): L1 distance between a method's decision
//! features and the ground truth.

use openapi_api::GroundTruthOracle;
use openapi_linalg::{Summary, Vector};

/// `L1Dist = ‖D_c^truth − D_c^method‖₁`.
///
/// # Panics
/// Panics on a dimension mismatch.
pub fn l1_dist(truth: &Vector, computed: &Vector) -> f64 {
    truth
        .l1_distance(computed)
        .expect("attribution vectors must share dimensionality")
}

/// Ground-truth decision features for `x0` and `class`, read from the
/// oracle (leaf classifier for LMTs, OpenBox map for PLNNs).
///
/// # Panics
/// Panics when the class is out of range or dimensions disagree.
pub fn ground_truth_features<M: GroundTruthOracle>(model: &M, x0: &Vector, class: usize) -> Vector {
    model.local_model(x0.as_slice()).decision_features(class)
}

/// Accumulates L1Dist observations for one method into the paper's
/// min/mean/max error-bar summary.
#[derive(Debug, Clone, Default)]
pub struct ExactnessAccumulator {
    summary: Summary,
}

impl ExactnessAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one instance's L1Dist against ground truth.
    pub fn record<M: GroundTruthOracle>(
        &mut self,
        model: &M,
        x0: &Vector,
        class: usize,
        computed: &Vector,
    ) {
        let truth = ground_truth_features(model, x0, class);
        self.summary.push(l1_dist(&truth, computed));
    }

    /// Records a failure (method returned an error / non-finite output).
    pub fn record_failure(&mut self) {
        self.summary.push(f64::NAN);
    }

    /// The accumulated summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::LinearSoftmaxModel;
    use openapi_linalg::Matrix;

    fn model() -> LinearSoftmaxModel {
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.0]]).unwrap();
        LinearSoftmaxModel::new(w, Vector::zeros(2))
    }

    #[test]
    fn l1_dist_basics() {
        let a = Vector(vec![1.0, 2.0]);
        let b = Vector(vec![0.0, 4.0]);
        assert_eq!(l1_dist(&a, &b), 3.0);
        assert_eq!(l1_dist(&a, &a), 0.0);
    }

    #[test]
    fn ground_truth_matches_local_model() {
        let m = model();
        let x0 = Vector(vec![0.3, 0.3]);
        let gt = ground_truth_features(&m, &x0, 0);
        // D_0 = W_0 − W_1 = (2, 2).
        assert_eq!(gt.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn accumulator_tracks_min_mean_max_and_failures() {
        let m = model();
        let x0 = Vector(vec![0.0, 0.0]);
        let truth = ground_truth_features(&m, &x0, 0);
        let mut acc = ExactnessAccumulator::new();
        acc.record(&m, &x0, 0, &truth); // exact: 0
        let off = &truth + &Vector(vec![1.0, 0.0]);
        acc.record(&m, &x0, 0, &off); // distance 1
        acc.record_failure();
        let s = acc.summary();
        assert_eq!(s.count(), 2);
        assert_eq!(s.non_finite(), 1);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(1.0));
        assert_eq!(s.mean(), Some(0.5));
    }
}
