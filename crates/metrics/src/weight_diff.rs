//! Weight Difference (paper §V-C, Fig. 6): how far the sampled instances'
//! true core parameters drift from the interpreted instance's.
//!
//! ```text
//! WD = Σ_{c'} Σ_{i} ‖D⁰_{c,c'} − Dⁱ_{c,c'}‖₁ / ((C−1)·|S|)
//! ```
//!
//! where `D⁰` comes from `x0`'s region and `Dⁱ` from sample `i`'s region —
//! both read from the ground-truth oracle. WD is 0 exactly when every
//! sample shares `x0`'s locally linear classifier, and otherwise measures
//! how *wrong* the equations built from those samples are.

use openapi_api::GroundTruthOracle;
use openapi_linalg::Vector;

/// Computes WD for one instance, class, and sample set.
///
/// # Panics
/// Panics when `samples` is empty, the class is out of range, or dimensions
/// disagree with the oracle.
pub fn weight_difference<M: GroundTruthOracle>(
    model: &M,
    x0: &Vector,
    class: usize,
    samples: &[Vector],
) -> f64 {
    assert!(
        !samples.is_empty(),
        "weight difference of an empty sample set"
    );
    let c_total = model.num_classes();
    assert!(class < c_total, "class out of range");
    assert!(c_total >= 2, "need at least two classes");

    let home = model.local_model(x0.as_slice());
    let mut total = 0.0;
    for s in samples {
        let other = model.local_model(s.as_slice());
        for c_prime in (0..c_total).filter(|&cp| cp != class) {
            let d0 = home.pairwise_decision_features(class, c_prime);
            let di = other.pairwise_decision_features(class, c_prime);
            total += d0.l1_distance(&di).expect("models share dimensionality");
        }
    }
    total / ((c_total - 1) as f64 * samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{LinearSoftmaxModel, LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;

    #[test]
    fn wd_zero_on_single_region_models() {
        let w = Matrix::from_rows(&[&[1.0, -1.0, 0.5], &[0.2, 0.4, -0.6]]).unwrap();
        let m = LinearSoftmaxModel::new(w, Vector::zeros(3));
        let x0 = Vector(vec![0.0, 0.0]);
        let samples = vec![Vector(vec![5.0, -3.0]), Vector(vec![-2.0, 2.0])];
        assert_eq!(weight_difference(&m, &x0, 0, &samples), 0.0);
    }

    #[test]
    fn wd_measures_cross_region_drift() {
        // Low region: W columns differ by (3, 0); high region: by (-1, 0).
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -1.0], &[0.0, 0.0]]).unwrap(),
            Vector::zeros(2),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap(),
            Vector::zeros(2),
        );
        let m = TwoRegionPlm::axis_split(0, 0.5, low, high);
        let x0 = Vector(vec![0.0, 0.0]); // low region: D_{0,1} = (3, 0)
                                         // One sample home, one escaped: escaped contributes
                                         // ‖(3,0) − (−1,0)‖₁ = 4; average over 2 samples (C−1 = 1): 2.
        let samples = vec![Vector(vec![0.1, 0.0]), Vector(vec![0.9, 0.0])];
        let wd = weight_difference(&m, &x0, 0, &samples);
        assert!((wd - 2.0).abs() < 1e-12, "wd = {wd}");
    }

    #[test]
    fn wd_is_symmetric_in_class_pairing_for_two_classes() {
        let low = LocalLinearModel::new(
            Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 0.0]]).unwrap(),
            Vector::zeros(2),
        );
        let high = LocalLinearModel::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.5]]).unwrap(),
            Vector::zeros(2),
        );
        let m = TwoRegionPlm::axis_split(0, 0.5, low, high);
        let x0 = Vector(vec![0.0, 0.0]);
        let samples = vec![Vector(vec![0.9, 0.0])];
        // D_{0,1} = −D_{1,0} ⇒ identical L1 distances.
        let a = weight_difference(&m, &x0, 0, &samples);
        let b = weight_difference(&m, &x0, 1, &samples);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_samples_panic() {
        let w = Matrix::zeros(2, 2);
        let m = LinearSoftmaxModel::new(w, Vector::zeros(2));
        let _ = weight_difference(&m, &Vector(vec![0.0, 0.0]), 0, &[]);
    }
}
