//! Reconstruction of each method's perturbation sample set, for the
//! sample-quality experiments (Figures 5 and 6).
//!
//! The paper measures "the quality of the set of sampled instances" that
//! each method bases its interpretation on. The fixed-`h` baselines sample
//! once from a known distribution, so their sets are regenerated here
//! directly; OpenAPI's set is whatever its *accepted* iteration sampled,
//! which the interpreter reports in
//! [`openapi_core::openapi::OpenApiResult::samples`]. Gradient methods do
//! not sample, so they yield `None`.

use openapi_api::PredictionApi;
use openapi_core::openapi::OpenApiInterpreter;
use openapi_core::sampler::{axis_pairs, sample_many};
use openapi_core::Method;
use openapi_linalg::Vector;
use rand::Rng;

/// Produces the perturbed-instance set the given method would use to
/// interpret `class` at `x0`, or `None` for non-sampling (gradient) methods
/// and for OpenAPI runs that exhausted their budget.
pub fn method_samples<M: PredictionApi, R: Rng>(
    method: &Method,
    api: &M,
    x0: &Vector,
    class: usize,
    rng: &mut R,
) -> Option<Vec<Vector>> {
    let d = api.dim();
    match method {
        Method::OpenApi(cfg) => OpenApiInterpreter::new(cfg.clone())
            .interpret(api, x0, class, rng)
            .ok()
            .map(|r| r.samples),
        Method::Naive(cfg) => Some(sample_many(x0.as_slice(), cfg.edge, d, rng)),
        Method::LimeLinear(cfg) | Method::LimeRidge(cfg) => Some(sample_many(
            x0.as_slice(),
            cfg.perturbation_distance,
            cfg.resolved_samples(d),
            rng,
        )),
        Method::Zoo(cfg) => Some(
            axis_pairs(x0.as_slice(), cfg.probe_distance)
                .into_iter()
                .flat_map(|(p, m)| [p, m])
                .collect(),
        ),
        Method::Saliency(_) | Method::GradientInput(_) | Method::IntegratedGradients(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::LinearSoftmaxModel;
    use openapi_core::baselines::gradient::SaliencyMaps;
    use openapi_core::baselines::lime::LimeConfig;
    use openapi_core::baselines::zoo::ZooConfig;
    use openapi_core::{NaiveConfig, OpenApiConfig};
    use openapi_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LinearSoftmaxModel {
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 0.25], &[0.0, 0.9]]).unwrap();
        LinearSoftmaxModel::new(w, Vector::zeros(2))
    }

    #[test]
    fn sample_counts_match_each_method() {
        let api = model();
        let x0 = Vector(vec![0.1, 0.2, 0.3]);
        let mut rng = StdRng::seed_from_u64(1);
        let d = 3;

        let oa = method_samples(
            &Method::OpenApi(OpenApiConfig::default()),
            &api,
            &x0,
            0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(oa.len(), d + 1);

        let n = method_samples(
            &Method::Naive(NaiveConfig::with_edge(0.1)),
            &api,
            &x0,
            0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(n.len(), d);

        let l = method_samples(
            &Method::LimeLinear(LimeConfig::linear(0.1)),
            &api,
            &x0,
            0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(l.len(), 2 * (d + 1));

        let z = method_samples(
            &Method::Zoo(ZooConfig::with_distance(0.1)),
            &api,
            &x0,
            0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(z.len(), 2 * d);
    }

    #[test]
    fn gradient_methods_have_no_samples() {
        let api = model();
        let x0 = Vector(vec![0.1, 0.2, 0.3]);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(method_samples(
            &Method::Saliency(SaliencyMaps::default()),
            &api,
            &x0,
            0,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn fixed_h_samples_respect_their_distance() {
        let api = model();
        let x0 = Vector(vec![0.5, 0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(3);
        let h = 1e-3;
        let s = method_samples(
            &Method::Naive(NaiveConfig::with_edge(h)),
            &api,
            &x0,
            0,
            &mut rng,
        )
        .unwrap();
        for x in &s {
            for i in 0..3 {
                assert!((x[i] - x0[i]).abs() <= h + 1e-15);
            }
        }
    }
}
