//! Heatmap rendering of decision features (paper §V-A, Fig. 2).
//!
//! The paper shows `D_c` as red/blue heatmaps over the 28×28 pixel grid. A
//! terminal-first reproduction renders (a) PGM images with a diverging
//! mapping (0 → mid-gray, positive → white, negative → black) and (b) CSV
//! dumps for external plotting.

use openapi_linalg::Vector;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Mean of a set of equal-length vectors (the "averaged decision features"
/// of Figure 2).
///
/// # Panics
/// Panics when `vectors` is empty or lengths disagree.
pub fn mean_vector(vectors: &[Vector]) -> Vector {
    assert!(!vectors.is_empty(), "mean of zero vectors");
    let d = vectors[0].len();
    let mut acc = Vector::zeros(d);
    for v in vectors {
        acc.axpy(1.0, v).expect("vectors must share dimensionality");
    }
    acc.scale(1.0 / vectors.len() as f64);
    acc
}

/// Renders signed values as a P2 (ASCII) PGM image with a symmetric
/// diverging mapping: `-max|v| → 0`, `0 → 127`, `+max|v| → 254`.
///
/// # Panics
/// Panics when `values.len() != width * height` or the grid is empty.
pub fn signed_pgm(values: &[f64], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "empty heatmap grid");
    assert_eq!(values.len(), width * height, "values/grid mismatch");
    let scale = values
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    writeln!(out, "P2\n{width} {height}\n254").expect("string writes cannot fail");
    for row in values.chunks(width) {
        let line: Vec<String> = row
            .iter()
            .map(|v| {
                let gray = ((v / scale) * 127.0 + 127.0).round().clamp(0.0, 254.0) as u32;
                gray.to_string()
            })
            .collect();
        writeln!(out, "{}", line.join(" ")).expect("string writes cannot fail");
    }
    out
}

/// Renders signed values as terminal ASCII art: `#`/`+` for positive
/// weights (supporting the class), `-`/`=` for negative (opposing), space
/// for near-zero.
///
/// # Panics
/// Panics when `values.len() != width * height`.
pub fn signed_ascii(values: &[f64], width: usize, height: usize) -> String {
    assert_eq!(values.len(), width * height, "values/grid mismatch");
    let scale = values
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    let mut out = String::with_capacity(height * (width + 1));
    for row in values.chunks(width) {
        for v in row {
            let t = v / scale;
            out.push(match t {
                t if t > 0.5 => '#',
                t if t > 0.1 => '+',
                t if t < -0.5 => '=',
                t if t < -0.1 => '-',
                _ => ' ',
            });
        }
        out.push('\n');
    }
    out
}

/// Writes a PGM heatmap to disk.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn write_pgm(path: &Path, values: &[f64], width: usize, height: usize) -> io::Result<()> {
    fs::write(path, signed_pgm(values, width, height))
}

/// Writes values as a one-column-per-pixel CSV row file: `row,col,value`.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn write_heatmap_csv(path: &Path, values: &[f64], width: usize) -> io::Result<()> {
    let mut out = String::from("row,col,value\n");
    for (i, v) in values.iter().enumerate() {
        writeln!(out, "{},{},{v:.12e}", i / width, i % width).expect("string writes cannot fail");
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_vector_averages() {
        let m = mean_vector(&[Vector(vec![1.0, 3.0]), Vector(vec![3.0, 5.0])]);
        assert_eq!(m.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn pgm_header_and_midpoint() {
        let pgm = signed_pgm(&[-1.0, 0.0, 1.0, 0.5], 2, 2);
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2"));
        assert_eq!(lines.next(), Some("254"));
        assert_eq!(lines.next(), Some("0 127"));
        assert_eq!(lines.next(), Some("254 191"));
    }

    #[test]
    fn pgm_of_zeros_is_all_midgray() {
        let pgm = signed_pgm(&[0.0; 4], 2, 2);
        assert!(pgm.lines().skip(3).all(|l| l == "127 127"));
    }

    #[test]
    fn ascii_uses_sign_channels() {
        let art = signed_ascii(&[1.0, -1.0, 0.2, 0.0], 2, 2);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows[0], "#=");
        assert_eq!(rows[1], "+ ");
    }

    #[test]
    fn csv_round_trip_values() {
        let dir = std::env::temp_dir().join("openapi_heatmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.csv");
        write_heatmap_csv(&path, &[0.25, -0.5], 2).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("row,col,value\n"));
        assert!(content.contains("0,0,2.5"));
        assert!(content.contains("0,1,-5"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let _ = signed_pgm(&[1.0; 3], 2, 2);
    }
}
