//! Region Difference (paper §V-C, Fig. 5): did a method's perturbed
//! instances stay inside the interpreted instance's locally linear region?

use openapi_api::GroundTruthOracle;
use openapi_linalg::Vector;

/// RD for one instance and one sample set: 0 when *every* sample shares
/// `x0`'s region, 1 otherwise (the paper's all-or-nothing definition).
///
/// # Panics
/// Panics when `samples` is empty (an empty sample set has no quality to
/// measure) or dimensions disagree with the oracle.
pub fn region_difference<M: GroundTruthOracle>(model: &M, x0: &Vector, samples: &[Vector]) -> f64 {
    assert!(
        !samples.is_empty(),
        "region difference of an empty sample set"
    );
    let home = model.region_id(x0.as_slice());
    let all_same = samples
        .iter()
        .all(|s| model.region_id(s.as_slice()) == home);
    if all_same {
        0.0
    } else {
        1.0
    }
}

/// Finer-grained diagnostic: the *fraction* of samples that escaped the
/// region (not in the paper, but useful for understanding RD transitions).
///
/// # Panics
/// As [`region_difference`].
pub fn escape_fraction<M: GroundTruthOracle>(model: &M, x0: &Vector, samples: &[Vector]) -> f64 {
    assert!(
        !samples.is_empty(),
        "escape fraction of an empty sample set"
    );
    let home = model.region_id(x0.as_slice());
    let escaped = samples
        .iter()
        .filter(|s| model.region_id(s.as_slice()) != home)
        .count();
    escaped as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::{LocalLinearModel, TwoRegionPlm};
    use openapi_linalg::Matrix;

    fn plm() -> TwoRegionPlm {
        let low = LocalLinearModel::new(Matrix::zeros(2, 2), Vector(vec![1.0, 0.0]));
        let high = LocalLinearModel::new(Matrix::zeros(2, 2), Vector(vec![0.0, 1.0]));
        TwoRegionPlm::axis_split(0, 0.5, low, high)
    }

    #[test]
    fn rd_zero_when_all_samples_stay_home() {
        let m = plm();
        let x0 = Vector(vec![0.2, 0.0]);
        let samples = vec![Vector(vec![0.1, 0.3]), Vector(vec![0.3, -0.2])];
        assert_eq!(region_difference(&m, &x0, &samples), 0.0);
        assert_eq!(escape_fraction(&m, &x0, &samples), 0.0);
    }

    #[test]
    fn rd_one_when_any_sample_escapes() {
        let m = plm();
        let x0 = Vector(vec![0.2, 0.0]);
        let samples = vec![Vector(vec![0.1, 0.3]), Vector(vec![0.9, 0.0])];
        assert_eq!(region_difference(&m, &x0, &samples), 1.0);
        assert_eq!(escape_fraction(&m, &x0, &samples), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_set_panics() {
        let m = plm();
        let _ = region_difference(&m, &Vector(vec![0.0, 0.0]), &[]);
    }
}
