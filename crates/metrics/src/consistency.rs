//! Interpretation consistency (paper §V-B, Fig. 4): cosine similarity
//! between the interpretations of an instance and its nearest neighbour.

use openapi_linalg::Vector;

/// Cosine similarity between two attribution vectors (zero-norm vectors
/// score 0, see [`Vector::cosine_similarity`]).
///
/// # Panics
/// Panics on a dimension mismatch.
pub fn interpretation_similarity(a: &Vector, b: &Vector) -> f64 {
    a.cosine_similarity(b)
        .expect("attribution vectors must share dimensionality")
}

/// The paper's Figure 4 series: per-instance cosine similarities sorted in
/// descending order.
pub fn sorted_similarity_series(similarities: &[f64]) -> Vec<f64> {
    use std::cmp::Ordering;
    let mut s: Vec<f64> = similarities.to_vec();
    // NaN (from non-finite attributions) sorts to the end, displayed last.
    s.sort_by(|a, b| match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // float: sort comparator; NaN already routed to the arms above.
        (false, false) => b.partial_cmp(a).expect("both finite-or-inf"),
    });
    s
}

/// Mean of the finite similarities (summary statistic printed in reports).
pub fn mean_similarity(similarities: &[f64]) -> f64 {
    let finite: Vec<f64> = similarities
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.iter().sum::<f64>() / finite.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_interpretations_score_one() {
        let a = Vector(vec![1.0, -2.0, 3.0]);
        assert!((interpretation_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_interpretations_score_one() {
        // Consistency is directional: magnitude differences don't matter.
        let a = Vector(vec![1.0, -2.0, 3.0]);
        let b = a.scaled(0.01);
        assert!((interpretation_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_interpretations_score_minus_one() {
        let a = Vector(vec![1.0, 0.0]);
        let b = Vector(vec![-1.0, 0.0]);
        assert!((interpretation_similarity(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_is_sorted_descending() {
        let s = sorted_similarity_series(&[0.5, 0.9, -0.1, 0.7]);
        assert_eq!(s, vec![0.9, 0.7, 0.5, -0.1]);
    }

    #[test]
    fn nan_sorts_last() {
        let s = sorted_similarity_series(&[0.5, f64::NAN, 0.7]);
        assert_eq!(s[0], 0.7);
        assert_eq!(s[1], 0.5);
        assert!(s[2].is_nan());
    }

    #[test]
    fn mean_skips_non_finite() {
        assert!((mean_similarity(&[1.0, 0.0, f64::NAN]) - 0.5).abs() < 1e-12);
        assert!(mean_similarity(&[]).is_nan());
    }
}
