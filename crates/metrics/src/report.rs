//! Report output: fixed-width terminal tables and CSV files.
//!
//! Every experiment binary prints the same rows/series the paper reports
//! (via [`Table`]) and writes machine-readable CSV next to it (via
//! [`write_csv`]) so the figures can be re-plotted externally.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple fixed-width table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// rejected.
    ///
    /// # Panics
    /// Panics when the row has more cells than there are headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        writeln!(out, "== {} ==", self.title).expect("string writes cannot fail");
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths.iter()) {
                let _ = write!(s, "{cell:<w$}  ");
            }
            s.trim_end().to_string()
        };
        writeln!(out, "{}", line(&self.headers, &widths)).expect("string writes cannot fail");
        let rule: usize = widths.iter().sum::<usize>() + widths.len().saturating_sub(1) * 2;
        writeln!(out, "{}", "-".repeat(rule)).expect("string writes cannot fail");
        for row in &self.rows {
            writeln!(out, "{}", line(row, &widths)).expect("string writes cannot fail");
        }
        out
    }

    /// CSV serialization of the table body (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{}", csv_row(&self.headers)).expect("string writes cannot fail");
        for row in &self.rows {
            writeln!(out, "{}", csv_row(row)).expect("string writes cannot fail");
        }
        out
    }
}

fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Writes headers and rows to a CSV file, creating parent directories.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        csv_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    )
    .expect("string writes cannot fail");
    for row in rows {
        writeln!(out, "{}", csv_row(row)).expect("string writes cannot fail");
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["method", "value"]);
        t.push_row(vec!["OpenAPI".into(), "0.0".into()]);
        t.push_row(vec!["L(1e-2)".into(), "123.456".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Header and rows start the second column at the same offset.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find("0.0").unwrap(), col);
        assert_eq!(lines[4].find("123.456").unwrap(), col);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('1'));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn rejects_overlong_rows() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("openapi_report_test/nested");
        let path = dir.join("out.csv");
        write_csv(&path, &["k", "v"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "k,v\n1,2\n");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }
}
