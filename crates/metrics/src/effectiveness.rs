//! Effectiveness via feature alteration: CPP and NLCI (paper §V-A, Fig. 3).
//!
//! Protocol (from Ancona et al., adopted by the paper): rank features by
//! the absolute weight the interpretation assigns them; alter them one at a
//! time in that order — a positively-weighted feature is set to 0 (removing
//! support), a negatively-weighted one to 1 (adding opposition); after each
//! alteration query the model and record
//!
//! * **CPP** — the absolute change of the probability of the interpreted
//!   class, and
//! * **label changed** — whether the argmax label moved (aggregated over
//!   instances, this is **NLCI**).
//!
//! A better interpretation ranks truly decision-relevant features first, so
//! its curves rise faster.

use openapi_api::PredictionApi;
use openapi_linalg::Vector;

/// Alteration-experiment parameters.
#[derive(Debug, Clone)]
pub struct EffectivenessConfig {
    /// How many features to alter (paper: 200).
    pub max_features: usize,
    /// Value substituted for positively-weighted features (paper: 0).
    pub positive_replacement: f64,
    /// Value substituted for negatively-weighted features (paper: 1).
    pub negative_replacement: f64,
}

impl Default for EffectivenessConfig {
    fn default() -> Self {
        EffectivenessConfig {
            max_features: 200,
            positive_replacement: 0.0,
            negative_replacement: 1.0,
        }
    }
}

/// Per-instance alteration results.
#[derive(Debug, Clone)]
pub struct AlterationCurve {
    /// `cpp[k]` = |Δ probability of the interpreted class| after altering
    /// the top `k + 1` features.
    pub cpp: Vec<f64>,
    /// `label_changed[k]` = the argmax label differs from the original
    /// after altering the top `k + 1` features.
    pub label_changed: Vec<bool>,
}

/// Runs the alteration protocol for one instance and one attribution.
///
/// # Panics
/// Panics when `attribution.len() != x0.len()` or dimensions disagree with
/// the API.
pub fn alteration_curve<M: PredictionApi>(
    api: &M,
    x0: &Vector,
    class: usize,
    attribution: &Vector,
    cfg: &EffectivenessConfig,
) -> AlterationCurve {
    assert_eq!(
        x0.len(),
        attribution.len(),
        "attribution/instance dimension mismatch"
    );
    assert_eq!(x0.len(), api.dim(), "instance/API dimension mismatch");
    assert!(class < api.num_classes(), "class out of range");

    let p0 = api.predict(x0.as_slice());
    let base_prob = p0[class];
    let base_label = p0.argmax().expect("non-empty prediction");

    // Rank features by |weight| descending; ties by index for determinism.
    let mut order: Vec<usize> = (0..attribution.len()).collect();
    order.sort_by(|&a, &b| {
        attribution[b]
            .abs()
            // float: sort comparator over finite attribution weights
            // (expect guards NaN); no equality rides on float identity.
            .partial_cmp(&attribution[a].abs())
            .expect("finite attribution weights")
            .then(a.cmp(&b))
    });

    let k = cfg.max_features.min(x0.len());
    let mut altered = x0.clone();
    let mut cpp = Vec::with_capacity(k);
    let mut label_changed = Vec::with_capacity(k);
    for &feat in order.iter().take(k) {
        altered[feat] = if attribution[feat] >= 0.0 {
            cfg.positive_replacement
        } else {
            cfg.negative_replacement
        };
        let p = api.predict(altered.as_slice());
        cpp.push((p[class] - base_prob).abs());
        label_changed.push(p.argmax().expect("non-empty prediction") != base_label);
    }
    AlterationCurve { cpp, label_changed }
}

/// Aggregates per-instance curves into the paper's plotted series:
/// average CPP per k, and NLCI (count of label-changed instances) per k.
///
/// Curves shorter than the longest are treated as carrying their final
/// value forward (only happens when `d < max_features`).
///
/// # Panics
/// Panics when `curves` is empty.
pub fn aggregate_curves(curves: &[AlterationCurve]) -> (Vec<f64>, Vec<usize>) {
    assert!(!curves.is_empty(), "no curves to aggregate");
    let len = curves.iter().map(|c| c.cpp.len()).max().expect("non-empty");
    let n = curves.len() as f64;
    let mut avg_cpp = vec![0.0; len];
    let mut nlci = vec![0usize; len];
    for c in curves {
        for k in 0..len {
            let idx = k.min(c.cpp.len() - 1);
            avg_cpp[k] += c.cpp[idx] / n;
            nlci[k] += usize::from(c.label_changed[idx]);
        }
    }
    (avg_cpp, nlci)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_api::LinearSoftmaxModel;
    use openapi_linalg::Matrix;

    /// Binary model where feature 0 strongly supports class 0 and feature 1
    /// weakly opposes it; features 2, 3 are irrelevant.
    fn model() -> LinearSoftmaxModel {
        let w = Matrix::from_rows(&[&[4.0, -4.0], &[-1.0, 1.0], &[0.0, 0.0], &[0.0, 0.0]]).unwrap();
        LinearSoftmaxModel::new(w, Vector(vec![0.0, 0.0]))
    }

    #[test]
    fn good_attribution_drops_confidence_fast() {
        let api = model();
        let x0 = Vector(vec![1.0, 0.0, 0.5, 0.5]);
        // The true decision features for class 0: (8, -2, 0, 0).
        let good = Vector(vec![8.0, -2.0, 0.0, 0.0]);
        let curve = alteration_curve(&api, &x0, 0, &good, &EffectivenessConfig::default());
        // Altering feature 0 (1.0 -> 0.0) kills the class-0 logit margin.
        assert!(
            curve.cpp[0] > 0.3,
            "first alteration must matter: {}",
            curve.cpp[0]
        );
        assert!(
            curve.label_changed[1],
            "after two alterations the label flips"
        );
    }

    #[test]
    fn bad_attribution_wastes_alterations() {
        let api = model();
        let x0 = Vector(vec![1.0, 0.0, 0.5, 0.5]);
        // Ranks the irrelevant features first.
        let bad = Vector(vec![0.1, 0.0, 9.0, 8.0]);
        let good = Vector(vec![8.0, -2.0, 0.0, 0.0]);
        let cfg = EffectivenessConfig {
            max_features: 2,
            ..Default::default()
        };
        let curve_bad = alteration_curve(&api, &x0, 0, &bad, &cfg);
        let curve_good = alteration_curve(&api, &x0, 0, &good, &cfg);
        assert!(
            curve_good.cpp[1] > curve_bad.cpp[1] + 0.2,
            "good {} vs bad {}",
            curve_good.cpp[1],
            curve_bad.cpp[1]
        );
    }

    #[test]
    fn positive_and_negative_replacements_differ() {
        let api = model();
        let x0 = Vector(vec![0.5, 0.5, 0.0, 0.0]);
        let attr = Vector(vec![8.0, -2.0, 0.0, 0.0]);
        let cfg = EffectivenessConfig::default();
        let curve = alteration_curve(&api, &x0, 0, &attr, &cfg);
        // After both relevant features are altered: x = (0, 1, …) — feature
        // 0 zeroed (positive weight), feature 1 set to 1 (negative weight).
        // Class-0 logit = -1, class-1 logit = +1 ⇒ label flipped.
        assert!(curve.label_changed[1]);
    }

    #[test]
    fn curve_length_is_capped_by_dimension() {
        let api = model();
        let x0 = Vector(vec![1.0, 0.0, 0.0, 0.0]);
        let attr = Vector(vec![1.0, 0.5, 0.2, 0.1]);
        let cfg = EffectivenessConfig {
            max_features: 100,
            ..Default::default()
        };
        let curve = alteration_curve(&api, &x0, 0, &attr, &cfg);
        assert_eq!(curve.cpp.len(), 4);
    }

    #[test]
    fn aggregation_averages_and_counts() {
        let a = AlterationCurve {
            cpp: vec![0.2, 0.4],
            label_changed: vec![false, true],
        };
        let b = AlterationCurve {
            cpp: vec![0.0, 0.2],
            label_changed: vec![false, false],
        };
        let (avg, nlci) = aggregate_curves(&[a, b]);
        assert!(
            (avg[0] - 0.1).abs() < 1e-12 && (avg[1] - 0.3).abs() < 1e-12,
            "{avg:?}"
        );
        assert_eq!(nlci, vec![0, 1]);
    }

    #[test]
    fn aggregation_pads_short_curves_with_final_value() {
        let a = AlterationCurve {
            cpp: vec![0.5],
            label_changed: vec![true],
        };
        let b = AlterationCurve {
            cpp: vec![0.1, 0.3],
            label_changed: vec![false, true],
        };
        let (avg, nlci) = aggregate_curves(&[a, b]);
        assert_eq!(avg.len(), 2);
        assert!((avg[1] - 0.4).abs() < 1e-12); // (0.5 carried + 0.3)/2
        assert_eq!(nlci[1], 2);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let api = model();
        let x0 = Vector(vec![1.0, 1.0, 1.0, 1.0]);
        let attr = Vector(vec![1.0, 1.0, 1.0, 1.0]); // all tied
        let c1 = alteration_curve(&api, &x0, 0, &attr, &EffectivenessConfig::default());
        let c2 = alteration_curve(&api, &x0, 0, &attr, &EffectivenessConfig::default());
        assert_eq!(c1.cpp, c2.cpp);
    }
}
