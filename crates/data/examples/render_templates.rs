fn main() {
    use openapi_data::synth::{ascii_art, draw_template, SynthStyle};
    for c in [0usize, 2, 3, 6, 9] {
        println!("--- digit {c} ---");
        println!(
            "{}",
            ascii_art(&draw_template(SynthStyle::MnistLike, c, 1.0).to_vector())
        );
    }
    for c in [0usize, 5, 8] {
        println!("--- garment {c} ---");
        println!(
            "{}",
            ascii_art(&draw_template(SynthStyle::FmnistLike, c, 1.0).to_vector())
        );
    }
}
