#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Dataset substrate for the OpenAPI reproduction.
//!
//! The paper evaluates on MNIST and Fashion-MNIST (28×28 grayscale, 10
//! classes, 60k/10k train/test, pixels normalized to `[0, 1]`). Those files
//! are not redistributable here, so this crate provides:
//!
//! * [`synth`] — deterministic synthetic generators with the same shape
//!   (`d = 784`, `C = 10`, `[0,1]` pixels): stroke-drawn digits
//!   ([`synth::SynthStyle::MnistLike`]) and garment silhouettes
//!   ([`synth::SynthStyle::FmnistLike`]). OpenAPI's guarantees are
//!   distribution-free, so these exercise identical code paths (see
//!   `DESIGN.md` §2 for the substitution argument).
//! * [`idx`] — a reader/writer for the original IDX file format, so the real
//!   datasets can be dropped in when available.
//! * [`dataset`] — the in-memory [`Dataset`] container with splits,
//!   sampling, and per-class statistics.
//! * [`knn`] — exact nearest-neighbour search (the consistency experiment,
//!   Figure 4, pairs each instance with its Euclidean nearest neighbour).
//! * [`canvas`] — the tiny rasterizer behind the synthetic generators.

pub mod canvas;
pub mod dataset;
pub mod idx;
pub mod knn;
pub mod synth;
pub mod transform;

pub use canvas::Canvas;
pub use dataset::Dataset;
pub use knn::nearest_neighbor;
pub use synth::{SynthConfig, SynthStyle};
pub use transform::downsample;
