//! Dataset transforms.
//!
//! [`downsample`] average-pools square images so experiments can run at
//! reduced dimensionality (e.g. 28×28 → 14×14, `d = 196`) with the same
//! class structure — the interpretation solvers are `O(d³)`, so quarter-`d`
//! smoke profiles run ~64× faster while exercising identical code paths.

use crate::dataset::Dataset;
use openapi_linalg::Vector;

/// Average-pools each instance, treated as a `side × side` image, by
/// `factor` in both axes.
///
/// # Panics
/// Panics when instances are not square images, or `side % factor != 0`,
/// or `factor == 0`.
pub fn downsample(dataset: &Dataset, factor: usize) -> Dataset {
    assert!(factor > 0, "zero pooling factor");
    let side = (dataset.dim() as f64).sqrt().round() as usize;
    assert_eq!(
        side * side,
        dataset.dim(),
        "instances are not square images"
    );
    assert_eq!(
        side % factor,
        0,
        "side {side} not divisible by factor {factor}"
    );
    let out_side = side / factor;
    let norm = (factor * factor) as f64;

    let instances: Vec<Vector> = dataset
        .instances()
        .iter()
        .map(|x| {
            let mut out = Vector::zeros(out_side * out_side);
            for oy in 0..out_side {
                for ox in 0..out_side {
                    let mut acc = 0.0;
                    for dy in 0..factor {
                        for dx in 0..factor {
                            acc += x[(oy * factor + dy) * side + ox * factor + dx];
                        }
                    }
                    out[oy * out_side + ox] = acc / norm;
                }
            }
            out
        })
        .collect();
    Dataset::new(instances, dataset.labels().to_vec(), dataset.num_classes())
        .expect("transform preserves dataset invariants")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_dataset() -> Dataset {
        // One 4×4 image with a bright 2×2 top-left block.
        let mut px = vec![0.0; 16];
        px[0] = 1.0;
        px[1] = 1.0;
        px[4] = 1.0;
        px[5] = 1.0;
        Dataset::new(vec![Vector(px)], vec![0], 1).unwrap()
    }

    #[test]
    fn pooling_averages_blocks() {
        let d = downsample(&image_dataset(), 2);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.instance(0).as_slice(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn factor_one_is_identity() {
        let src = image_dataset();
        assert_eq!(downsample(&src, 1), src);
    }

    #[test]
    fn mass_is_preserved_up_to_normalization() {
        let src = image_dataset();
        let d = downsample(&src, 2);
        let before: f64 = src.instance(0).iter().sum();
        let after: f64 = d.instance(0).iter().sum();
        assert!((before - after * 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn incompatible_factor_panics() {
        let _ = downsample(&image_dataset(), 3);
    }
}
