//! Synthetic 28×28 image datasets standing in for MNIST / Fashion-MNIST.
//!
//! The paper's claims are distribution-free — exactness needs only (a) the
//! target being a PLM and (b) instances drawn from continuous distributions
//! — so faithful reproduction needs datasets with the *same shape*
//! (`d = 784`, `C = 10`, pixels in `[0,1]`) and enough class structure to
//! train accurate PLNNs and LMTs, not the original photographs. Each class
//! here is a programmatically drawn template (digit strokes or garment
//! silhouettes) perturbed per instance by stroke-thickness jitter,
//! translation, blur, intensity scaling, and dense pixel noise. The pixel
//! noise in particular makes the instance distribution continuous, which is
//! the assumption behind the paper's probability-1 arguments.

use crate::canvas::Canvas;
use crate::dataset::Dataset;
use openapi_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which template family to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthStyle {
    /// Stroke-drawn digits 0–9 (stands in for MNIST).
    MnistLike,
    /// Garment silhouettes (stands in for Fashion-MNIST): T-shirt, trouser,
    /// pullover, dress, coat, sandal, shirt, sneaker, bag, ankle boot.
    FmnistLike,
}

impl SynthStyle {
    /// Human-readable class names, matching the paper's figures.
    pub fn class_names(&self) -> [&'static str; 10] {
        match self {
            SynthStyle::MnistLike => ["0", "1", "2", "3", "4", "5", "6", "7", "8", "9"],
            SynthStyle::FmnistLike => [
                "T-shirt", "Trouser", "Pullover", "Dress", "Coat", "Sandal", "Shirt", "Sneaker",
                "Bag", "Boot",
            ],
        }
    }

    /// Dataset name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SynthStyle::MnistLike => "synth-MNIST",
            SynthStyle::FmnistLike => "synth-FMNIST",
        }
    }
}

/// Image side length: the paper's 28×28 grid.
pub const SIDE: usize = 28;
/// Flattened dimensionality, `d = 784`.
pub const DIM: usize = SIDE * SIDE;
/// Number of classes, `C = 10`.
pub const NUM_CLASSES: usize = 10;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Template family.
    pub style: SynthStyle,
    /// Number of training instances (classes balanced round-robin).
    pub train_size: usize,
    /// Number of test instances.
    pub test_size: usize,
    /// RNG seed; same seed ⇒ identical datasets.
    pub seed: u64,
    /// Uniform pixel-noise amplitude (`±noise` added to every pixel).
    /// Must be positive for the continuous-distribution assumption.
    pub noise: f64,
    /// Maximum translation jitter in pixels (each axis, uniform integer in
    /// `[-max_shift, max_shift]`).
    pub max_shift: i32,
    /// Per-instance intensity scaling range.
    pub intensity: (f64, f64),
}

impl SynthConfig {
    /// Paper-scale configuration (60k / 10k) for the given style.
    pub fn paper_scale(style: SynthStyle) -> Self {
        SynthConfig {
            style,
            train_size: 60_000,
            test_size: 10_000,
            seed: 42,
            noise: 0.04,
            max_shift: 2,
            intensity: (0.75, 1.0),
        }
    }

    /// A small configuration for unit tests and quick runs.
    pub fn small(style: SynthStyle, train_size: usize, test_size: usize, seed: u64) -> Self {
        SynthConfig {
            style,
            train_size,
            test_size,
            seed,
            noise: 0.04,
            max_shift: 2,
            intensity: (0.75, 1.0),
        }
    }

    /// Generates `(train, test)` datasets.
    ///
    /// Classes are assigned round-robin so both splits are balanced; all
    /// randomness flows from `seed`.
    ///
    /// # Panics
    /// Panics when either split size is zero or parameters are degenerate
    /// (negative noise, empty intensity range).
    pub fn generate(&self) -> (Dataset, Dataset) {
        assert!(self.train_size > 0 && self.test_size > 0, "empty split");
        assert!(self.noise >= 0.0, "negative noise");
        assert!(
            self.intensity.0 > 0.0 && self.intensity.0 <= self.intensity.1,
            "bad intensity range"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let train = self.generate_split(self.train_size, &mut rng);
        let test = self.generate_split(self.test_size, &mut rng);
        (train, test)
    }

    fn generate_split(&self, n: usize, rng: &mut StdRng) -> Dataset {
        let mut instances = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % NUM_CLASSES;
            instances.push(self.render_instance(class, rng));
            labels.push(class);
        }
        Dataset::new(instances, labels, NUM_CLASSES).expect("generator invariants")
    }

    /// Renders a single instance of `class` with all jitters applied.
    ///
    /// # Panics
    /// Panics when `class >= 10`.
    pub fn render_instance<R: Rng>(&self, class: usize, rng: &mut R) -> Vector {
        let thickness = rng.gen_range(0.6..1.4);
        let mut canvas = draw_template(self.style, class, thickness);
        let dx = rng.gen_range(-self.max_shift..=self.max_shift);
        let dy = rng.gen_range(-self.max_shift..=self.max_shift);
        canvas = canvas.translated(dx, dy);
        canvas.blur();
        let alpha = rng.gen_range(self.intensity.0..=self.intensity.1);
        let mut v = canvas.to_vector();
        for p in v.iter_mut() {
            let noisy = *p * alpha + rng.gen_range(-self.noise..=self.noise);
            *p = noisy.clamp(0.0, 1.0);
        }
        v
    }
}

/// Draws the noiseless template for `class` with the given stroke thickness.
///
/// Exposed for the Figure 2 case study (class-average reference images) and
/// for tests that need deterministic shapes.
///
/// # Panics
/// Panics when `class >= 10`.
pub fn draw_template(style: SynthStyle, class: usize, thickness: f64) -> Canvas {
    assert!(class < NUM_CLASSES, "class {class} out of range");
    let mut c = Canvas::new(SIDE, SIDE);
    match style {
        SynthStyle::MnistLike => draw_digit(&mut c, class, thickness),
        SynthStyle::FmnistLike => draw_garment(&mut c, class, thickness),
    }
    c
}

fn draw_digit(c: &mut Canvas, digit: usize, t: f64) {
    match digit {
        0 => {
            c.ellipse_outline(14.0, 14.0, 5.5, 8.0, t, 1.0);
        }
        1 => {
            c.line(14, 5, 14, 22, t, 1.0);
            c.line(11, 9, 14, 5, t, 1.0);
            c.line(11, 22, 18, 22, t, 1.0);
        }
        2 => {
            c.arc(13.5, 9.5, 5.0, 4.5, -170.0, 40.0, t, 1.0);
            c.line(17, 13, 9, 22, t, 1.0);
            c.line(9, 22, 19, 22, t, 1.0);
        }
        3 => {
            c.arc(13.0, 9.0, 5.0, 4.0, -140.0, 90.0, t, 1.0);
            c.arc(13.0, 18.0, 5.0, 4.5, -90.0, 140.0, t, 1.0);
        }
        4 => {
            c.line(16, 5, 9, 16, t, 1.0);
            c.line(9, 16, 20, 16, t, 1.0);
            c.line(16, 5, 16, 22, t, 1.0);
        }
        5 => {
            c.line(18, 5, 10, 5, t, 1.0);
            c.line(10, 5, 10, 12, t, 1.0);
            c.arc(13.0, 16.5, 5.5, 5.0, -80.0, 140.0, t, 1.0);
        }
        6 => {
            c.arc(14.0, 17.0, 5.0, 5.0, 0.0, 360.0, t, 1.0);
            c.arc(16.0, 13.0, 7.0, 8.5, 160.0, 250.0, t, 1.0);
        }
        7 => {
            c.line(9, 5, 19, 5, t, 1.0);
            c.line(19, 5, 12, 22, t, 1.0);
            c.line(11, 13, 17, 13, t, 1.0);
        }
        8 => {
            c.ellipse_outline(14.0, 9.5, 4.0, 4.0, t, 1.0);
            c.ellipse_outline(14.0, 18.0, 5.0, 4.5, t, 1.0);
        }
        9 => {
            c.arc(13.5, 10.0, 5.0, 5.0, 0.0, 360.0, t, 1.0);
            c.arc(12.0, 14.5, 7.0, 8.0, -60.0, 60.0, t, 1.0);
        }
        _ => unreachable!("digit checked by caller"),
    }
}

fn draw_garment(c: &mut Canvas, class: usize, t: f64) {
    // Intensity slightly below 1.0 so blur + intensity jitter keep texture.
    let v = 0.95;
    match class {
        // T-shirt/top: boxy body, short sleeves.
        0 => {
            c.fill_rect(9, 8, 19, 22, v);
            c.fill_rect(5, 8, 9, 13, v);
            c.fill_rect(19, 8, 23, 13, v);
            c.arc(14.0, 8.0, 3.0, 2.0, 0.0, 180.0, t, 1.0);
        }
        // Trouser: two legs joined at the waist.
        1 => {
            c.fill_rect(10, 5, 18, 9, v);
            c.fill_rect(10, 9, 13, 23, v);
            c.fill_rect(15, 9, 18, 23, v);
        }
        // Pullover: body plus long sleeves.
        2 => {
            c.fill_rect(9, 8, 19, 23, v);
            c.fill_rect(4, 8, 9, 20, v);
            c.fill_rect(19, 8, 24, 20, v);
        }
        // Dress: fitted top flaring into a skirt.
        3 => {
            c.fill_rect(11, 5, 17, 12, v);
            for y in 12..=24 {
                let half = 3.0 + (y - 12) as f64 * 0.45;
                c.fill_rect(
                    (14.0 - half).round() as i32,
                    y,
                    (14.0 + half).round() as i32,
                    y,
                    v,
                );
            }
        }
        // Coat: long body, long sleeves, open front seam drawn bright.
        4 => {
            c.fill_rect(8, 6, 20, 24, v);
            c.fill_rect(4, 6, 8, 22, v);
            c.fill_rect(20, 6, 24, 22, v);
            c.line(14, 6, 14, 24, t * 0.5, 1.0);
        }
        // Sandal: thin sole with strap diagonals.
        5 => {
            c.fill_rect(5, 18, 23, 21, v);
            c.line(7, 18, 13, 11, t, 1.0);
            c.line(13, 11, 18, 18, t, 1.0);
            c.line(10, 18, 16, 12, t, 1.0);
        }
        // Shirt: like the T-shirt but longer sleeves and a V collar.
        6 => {
            c.fill_rect(9, 8, 19, 23, v);
            c.fill_rect(5, 8, 9, 17, v);
            c.fill_rect(19, 8, 23, 17, v);
            c.line(12, 8, 14, 12, t, 1.0);
            c.line(16, 8, 14, 12, t, 1.0);
        }
        // Sneaker: low profile, thick sole, lace lines.
        7 => {
            c.fill_rect(4, 18, 24, 21, v);
            c.fill_ellipse(13.0, 16.0, 9.0, 4.0, v);
            c.line(10, 13, 14, 15, t * 0.7, 1.0);
            c.line(12, 12, 16, 14, t * 0.7, 1.0);
        }
        // Bag: rectangular body with a handle loop.
        8 => {
            c.fill_rect(7, 12, 21, 23, v);
            c.arc(14.0, 12.0, 5.0, 4.5, 180.0, 360.0, t, 1.0);
        }
        // Ankle boot: shaft plus foot plus sole.
        9 => {
            c.fill_rect(8, 6, 14, 18, v);
            c.fill_rect(8, 15, 22, 21, v);
            c.fill_rect(8, 20, 23, 22, v);
        }
        _ => unreachable!("class checked by caller"),
    }
}

/// Renders a vector as ASCII art (for debugging and example output).
///
/// # Panics
/// Panics when `v.len() != DIM`.
pub fn ascii_art(v: &Vector) -> String {
    assert_eq!(v.len(), DIM, "ascii_art expects a 784-dim image");
    let ramp = [' ', '.', ':', '+', '*', '#', '@'];
    let mut s = String::with_capacity(SIDE * (SIDE + 1));
    for y in 0..SIDE {
        for x in 0..SIDE {
            let p = v[y * SIDE + x].clamp(0.0, 1.0);
            let idx = (p * (ramp.len() - 1) as f64).round() as usize;
            s.push(ramp[idx]);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_are_nonempty_and_distinct() {
        for style in [SynthStyle::MnistLike, SynthStyle::FmnistLike] {
            let canvases: Vec<Canvas> = (0..10).map(|c| draw_template(style, c, 1.0)).collect();
            for (i, c) in canvases.iter().enumerate() {
                assert!(c.mass() > 5.0, "{style:?} class {i} nearly empty");
            }
            for i in 0..10 {
                for j in i + 1..10 {
                    let vi = canvases[i].to_vector();
                    let vj = canvases[j].to_vector();
                    let dist = vi.l1_distance(&vj).unwrap();
                    assert!(
                        dist > 10.0,
                        "{style:?} classes {i} and {j} too similar (L1 {dist})"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = SynthConfig::small(SynthStyle::MnistLike, 20, 10, 7);
        let (tr1, te1) = cfg.generate();
        let (tr2, te2) = cfg.generate();
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthConfig::small(SynthStyle::MnistLike, 10, 10, 1)
            .generate()
            .0;
        let b = SynthConfig::small(SynthStyle::MnistLike, 10, 10, 2)
            .generate()
            .0;
        assert_ne!(a, b);
    }

    #[test]
    fn splits_have_requested_sizes_and_balanced_classes() {
        let cfg = SynthConfig::small(SynthStyle::FmnistLike, 50, 20, 3);
        let (train, test) = cfg.generate();
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 20);
        assert_eq!(train.dim(), DIM);
        assert_eq!(train.num_classes(), NUM_CLASSES);
        let counts = train.class_counts();
        assert_eq!(counts, vec![5; 10]);
        assert_eq!(test.class_counts(), vec![2; 10]);
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let cfg = SynthConfig::small(SynthStyle::FmnistLike, 30, 10, 5);
        let (train, _) = cfg.generate();
        for (x, _) in train.iter() {
            assert!(x.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn instances_of_same_class_are_similar_but_not_identical() {
        let cfg = SynthConfig::small(SynthStyle::MnistLike, 40, 10, 9);
        let (train, _) = cfg.generate();
        // Instances 0 and 10 are both class 0.
        assert_eq!(train.label(0), train.label(10));
        let d_same = train.instance(0).l1_distance(train.instance(10)).unwrap();
        assert!(d_same > 0.0, "noise must make instances unique");
        // Cross-class pairs are farther on average than same-class pairs.
        let d_cross = train.instance(0).l1_distance(train.instance(1)).unwrap();
        assert!(d_cross > d_same * 0.5, "classes should be distinguishable");
    }

    #[test]
    fn noise_makes_distribution_continuous() {
        // No two generated instances should ever coincide exactly.
        let cfg = SynthConfig::small(SynthStyle::MnistLike, 30, 10, 11);
        let (train, _) = cfg.generate();
        for i in 0..train.len() {
            for j in i + 1..train.len() {
                assert_ne!(train.instance(i), train.instance(j), "({i},{j}) identical");
            }
        }
    }

    #[test]
    fn ascii_art_has_expected_shape() {
        let v = draw_template(SynthStyle::MnistLike, 0, 1.0).to_vector();
        let art = ascii_art(&v);
        assert_eq!(art.lines().count(), SIDE);
        assert!(art.lines().all(|l| l.chars().count() == SIDE));
        assert!(art.contains('@') || art.contains('#'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn template_class_bound() {
        let _ = draw_template(SynthStyle::MnistLike, 10, 1.0);
    }

    #[test]
    fn class_names_align_with_paper() {
        let names = SynthStyle::FmnistLike.class_names();
        assert_eq!(names[0], "T-shirt");
        assert_eq!(names[9], "Boot");
        assert_eq!(SynthStyle::MnistLike.class_names()[3], "3");
    }
}
