//! A minimal grayscale rasterizer for the synthetic image generators.
//!
//! Just enough 2-D drawing to sketch recognizable digit strokes and garment
//! silhouettes on a 28×28 grid: thick lines, filled rectangles and ellipses,
//! and a box blur to soften edges the way real scanned/photographed images
//! are soft.

use openapi_linalg::Vector;

/// A `width × height` grayscale canvas with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Canvas {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Canvas {
    /// Creates an all-black canvas.
    pub fn new(width: usize, height: usize) -> Self {
        Canvas {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads pixel `(x, y)`; coordinates outside the canvas read as 0.
    pub fn get(&self, x: i32, y: i32) -> f64 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            0.0
        } else {
            self.pixels[y as usize * self.width + x as usize]
        }
    }

    /// Writes pixel `(x, y)` with saturation (max of old and new value);
    /// out-of-bounds writes are ignored. Saturating composition means
    /// overlapping strokes don't exceed 1.0.
    pub fn set(&mut self, x: i32, y: i32, v: f64) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let p = &mut self.pixels[y as usize * self.width + x as usize];
        *p = p.max(v.clamp(0.0, 1.0));
    }

    /// Draws a line from `(x0, y0)` to `(x1, y1)` with the given thickness
    /// (in pixels) and intensity, using Bresenham plus a disc brush.
    pub fn line(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, thickness: f64, v: f64) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        let (mut x, mut y) = (x0, y0);
        loop {
            self.brush(x, y, thickness, v);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Stamps a disc of the given radius at `(cx, cy)`.
    fn brush(&mut self, cx: i32, cy: i32, radius: f64, v: f64) {
        let r = radius.max(0.0);
        let ri = r.ceil() as i32;
        for dy in -ri..=ri {
            for dx in -ri..=ri {
                let dist = ((dx * dx + dy * dy) as f64).sqrt();
                if dist <= r + 0.5 {
                    // Soft edge: fade over the last half pixel.
                    let fade = (r + 0.5 - dist).clamp(0.0, 1.0);
                    self.set(cx + dx, cy + dy, v * fade.max(0.35));
                }
            }
        }
    }

    /// Fills the axis-aligned rectangle `[x0, x1] × [y0, y1]` (inclusive).
    pub fn fill_rect(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, v: f64) {
        for y in y0.min(y1)..=y0.max(y1) {
            for x in x0.min(x1)..=x0.max(x1) {
                self.set(x, y, v);
            }
        }
    }

    /// Fills the ellipse centered at `(cx, cy)` with radii `(rx, ry)`.
    pub fn fill_ellipse(&mut self, cx: f64, cy: f64, rx: f64, ry: f64, v: f64) {
        if rx <= 0.0 || ry <= 0.0 {
            return;
        }
        let x0 = (cx - rx).floor() as i32;
        let x1 = (cx + rx).ceil() as i32;
        let y0 = (cy - ry).floor() as i32;
        let y1 = (cy + ry).ceil() as i32;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let nx = (x as f64 - cx) / rx;
                let ny = (y as f64 - cy) / ry;
                if nx * nx + ny * ny <= 1.0 {
                    self.set(x, y, v);
                }
            }
        }
    }

    /// Draws the outline of an ellipse with the given stroke thickness.
    pub fn ellipse_outline(&mut self, cx: f64, cy: f64, rx: f64, ry: f64, thickness: f64, v: f64) {
        self.arc(cx, cy, rx, ry, 0.0, 360.0, thickness, v);
    }

    /// Draws an elliptical arc from `deg0` to `deg1` (degrees; 0° points
    /// right, 90° points *down* — screen coordinates) with the given stroke
    /// thickness.
    #[allow(clippy::too_many_arguments)] // center/radii/angles/stroke are the natural arc signature
    pub fn arc(
        &mut self,
        cx: f64,
        cy: f64,
        rx: f64,
        ry: f64,
        deg0: f64,
        deg1: f64,
        thickness: f64,
        v: f64,
    ) {
        let span = (deg1 - deg0).abs().max(1.0);
        // Dense parametric sweep so adjacent samples touch at any radius.
        let steps = ((rx.max(ry) * span / 30.0).ceil() as usize).max(8);
        for i in 0..=steps {
            let deg = deg0 + (deg1 - deg0) * i as f64 / steps as f64;
            let t = deg.to_radians();
            let x = cx + rx * t.cos();
            let y = cy + ry * t.sin();
            self.brush(x.round() as i32, y.round() as i32, thickness / 2.0, v);
        }
    }

    /// One pass of 3×3 box blur (softens hard raster edges).
    pub fn blur(&mut self) {
        let mut out = vec![0.0; self.pixels.len()];
        for y in 0..self.height as i32 {
            for x in 0..self.width as i32 {
                let mut acc = 0.0;
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        acc += self.get(x + dx, y + dy);
                    }
                }
                out[y as usize * self.width + x as usize] = acc / 9.0;
            }
        }
        self.pixels = out;
    }

    /// Returns the pixels translated by `(dx, dy)`, zero-filled at borders.
    pub fn translated(&self, dx: i32, dy: i32) -> Canvas {
        let mut out = Canvas::new(self.width, self.height);
        for y in 0..self.height as i32 {
            for x in 0..self.width as i32 {
                let v = self.get(x - dx, y - dy);
                if v > 0.0 {
                    out.set(x, y, v);
                }
            }
        }
        out
    }

    /// Flattens to a feature vector (row-major, length `width × height`) —
    /// the same cascading the paper applies to image pixels.
    pub fn to_vector(&self) -> Vector {
        Vector(self.pixels.clone())
    }

    /// Borrow the raw pixels.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Total luminance (sum of all pixels) — a quick nonemptiness check.
    pub fn mass(&self) -> f64 {
        self.pixels.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canvas_is_black() {
        let c = Canvas::new(4, 3);
        assert_eq!(c.mass(), 0.0);
        assert_eq!(c.to_vector().len(), 12);
    }

    #[test]
    fn out_of_bounds_access_is_safe() {
        let mut c = Canvas::new(4, 4);
        c.set(-1, 0, 1.0);
        c.set(0, 99, 1.0);
        assert_eq!(c.get(-5, 2), 0.0);
        assert_eq!(c.get(2, 100), 0.0);
        assert_eq!(c.mass(), 0.0);
    }

    #[test]
    fn set_saturates_instead_of_accumulating() {
        let mut c = Canvas::new(2, 2);
        c.set(0, 0, 0.8);
        c.set(0, 0, 0.5); // lower value must not darken
        assert_eq!(c.get(0, 0), 0.8);
        c.set(0, 0, 2.0); // clamped to 1.0
        assert_eq!(c.get(0, 0), 1.0);
    }

    #[test]
    fn line_connects_endpoints() {
        let mut c = Canvas::new(10, 10);
        c.line(1, 1, 8, 8, 0.0, 1.0);
        assert!(c.get(1, 1) > 0.0);
        assert!(c.get(8, 8) > 0.0);
        assert!(c.get(4, 4) > 0.0 || c.get(5, 5) > 0.0);
    }

    #[test]
    fn thick_line_is_wider_than_thin() {
        let mut thin = Canvas::new(20, 20);
        thin.line(2, 10, 17, 10, 0.0, 1.0);
        let mut thick = Canvas::new(20, 20);
        thick.line(2, 10, 17, 10, 2.0, 1.0);
        assert!(thick.mass() > thin.mass() * 2.0);
    }

    #[test]
    fn fill_rect_covers_expected_area() {
        let mut c = Canvas::new(10, 10);
        c.fill_rect(2, 3, 4, 5, 1.0);
        // 3 × 3 pixels.
        assert_eq!(c.mass(), 9.0);
        assert_eq!(c.get(2, 3), 1.0);
        assert_eq!(c.get(4, 5), 1.0);
        assert_eq!(c.get(5, 5), 0.0);
    }

    #[test]
    fn fill_rect_accepts_reversed_corners() {
        let mut a = Canvas::new(8, 8);
        a.fill_rect(5, 6, 1, 2, 0.7);
        let mut b = Canvas::new(8, 8);
        b.fill_rect(1, 2, 5, 6, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn ellipse_contains_center_excludes_corners() {
        let mut c = Canvas::new(20, 20);
        c.fill_ellipse(10.0, 10.0, 5.0, 3.0, 1.0);
        assert_eq!(c.get(10, 10), 1.0);
        assert_eq!(c.get(10, 14), 0.0); // beyond ry
        assert_eq!(c.get(16, 10), 0.0); // beyond rx
        assert!(c.get(14, 10) > 0.0);
    }

    #[test]
    fn ellipse_outline_leaves_center_empty() {
        let mut c = Canvas::new(20, 20);
        c.ellipse_outline(10.0, 10.0, 6.0, 6.0, 1.0, 1.0);
        assert_eq!(c.get(10, 10), 0.0);
        // Ring itself is drawn.
        assert!(c.get(16, 10) > 0.0);
    }

    #[test]
    fn blur_preserves_mass_approximately_in_interior() {
        let mut c = Canvas::new(11, 11);
        c.fill_rect(4, 4, 6, 6, 1.0);
        let before = c.mass();
        c.blur();
        let after = c.mass();
        // Box blur redistributes but keeps total mass for interior shapes.
        assert!((before - after).abs() < 1e-9);
        // Edges are now soft.
        assert!(c.get(3, 5) > 0.0 && c.get(3, 5) < 1.0);
    }

    #[test]
    fn translation_moves_content() {
        let mut c = Canvas::new(10, 10);
        c.set(5, 5, 1.0);
        let t = c.translated(2, -1);
        assert_eq!(t.get(7, 4), 1.0);
        assert_eq!(t.get(5, 5), 0.0);
    }

    #[test]
    fn translation_clips_at_borders() {
        let mut c = Canvas::new(4, 4);
        c.set(3, 3, 1.0);
        let t = c.translated(1, 1); // falls off the canvas
        assert_eq!(t.mass(), 0.0);
    }
}
