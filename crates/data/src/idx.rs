//! Reader/writer for the IDX file format used by MNIST and Fashion-MNIST.
//!
//! The synthetic generators make the real datasets unnecessary, but the
//! format support means a user who *does* have `train-images-idx3-ubyte`
//! etc. can reproduce the experiments on the original data with no code
//! changes: `load_image_dataset` produces the same [`Dataset`] the
//! generators do (pixels normalized to `[0,1]`).
//!
//! Format (big-endian): magic `[0, 0, type, ndim]`, then `ndim` u32 sizes,
//! then the raw data. Only `type = 0x08` (unsigned byte) is needed here.

use crate::dataset::Dataset;
use bytes::{Buf, BufMut};
use openapi_linalg::Vector;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors reading IDX content.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Magic number or dimension header is malformed.
    BadHeader(String),
    /// Header promises more data than the buffer holds.
    Truncated {
        /// Bytes promised by the header.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// Image and label files disagree on the instance count, or labels are
    /// out of range.
    Inconsistent(String),
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "idx io error: {e}"),
            IdxError::BadHeader(m) => write!(f, "idx bad header: {m}"),
            IdxError::Truncated { expected, found } => {
                write!(f, "idx truncated: expected {expected} bytes, found {found}")
            }
            IdxError::Inconsistent(m) => write!(f, "idx inconsistent: {m}"),
        }
    }
}

impl std::error::Error for IdxError {}

impl From<io::Error> for IdxError {
    fn from(e: io::Error) -> Self {
        IdxError::Io(e)
    }
}

const UBYTE_TYPE: u8 = 0x08;

/// A decoded IDX tensor of unsigned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxTensor {
    /// Dimension sizes, outermost first (e.g. `[n, 28, 28]` for images).
    pub shape: Vec<usize>,
    /// Row-major payload.
    pub data: Vec<u8>,
}

impl IdxTensor {
    /// Parses an IDX byte buffer.
    ///
    /// # Errors
    /// [`IdxError::BadHeader`] / [`IdxError::Truncated`] on malformed input.
    pub fn parse(mut buf: &[u8]) -> Result<Self, IdxError> {
        if buf.len() < 4 {
            return Err(IdxError::BadHeader("shorter than magic".into()));
        }
        let magic = buf.get_u32();
        let ty = ((magic >> 8) & 0xff) as u8;
        let ndim = (magic & 0xff) as usize;
        if (magic >> 16) != 0 {
            return Err(IdxError::BadHeader(format!(
                "magic prefix nonzero: {magic:#x}"
            )));
        }
        if ty != UBYTE_TYPE {
            return Err(IdxError::BadHeader(format!(
                "unsupported element type {ty:#x}"
            )));
        }
        if ndim == 0 || ndim > 4 {
            return Err(IdxError::BadHeader(format!("unsupported ndim {ndim}")));
        }
        if buf.len() < ndim * 4 {
            return Err(IdxError::BadHeader("dimension header truncated".into()));
        }
        let mut shape = Vec::with_capacity(ndim);
        let mut total = 1usize;
        for _ in 0..ndim {
            let s = buf.get_u32() as usize;
            total = total.saturating_mul(s);
            shape.push(s);
        }
        if buf.len() < total {
            return Err(IdxError::Truncated {
                expected: total,
                found: buf.len(),
            });
        }
        Ok(IdxTensor {
            shape,
            data: buf[..total].to_vec(),
        })
    }

    /// Serializes back to IDX bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.shape.len() * 4 + self.data.len());
        out.put_u32(((UBYTE_TYPE as u32) << 8) | self.shape.len() as u32);
        for &s in &self.shape {
            out.put_u32(s as u32);
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Reads and parses a file.
    ///
    /// # Errors
    /// I/O and parse errors per [`IdxError`].
    pub fn read_file(path: &Path) -> Result<Self, IdxError> {
        let bytes = fs::read(path)?;
        Self::parse(&bytes)
    }
}

/// Loads an image/label IDX pair into a [`Dataset`], normalizing pixels to
/// `[0, 1]` exactly as the paper does.
///
/// # Errors
/// Parse errors, plus [`IdxError::Inconsistent`] when shapes disagree or a
/// label exceeds `num_classes`.
pub fn load_image_dataset(
    images: &IdxTensor,
    labels: &IdxTensor,
    num_classes: usize,
) -> Result<Dataset, IdxError> {
    if images.shape.len() != 3 {
        return Err(IdxError::Inconsistent(format!(
            "images must be 3-d (n, h, w); got {:?}",
            images.shape
        )));
    }
    if labels.shape.len() != 1 {
        return Err(IdxError::Inconsistent(format!(
            "labels must be 1-d; got {:?}",
            labels.shape
        )));
    }
    let n = images.shape[0];
    if labels.shape[0] != n {
        return Err(IdxError::Inconsistent(format!(
            "{n} images but {} labels",
            labels.shape[0]
        )));
    }
    let pixels_per = images.shape[1] * images.shape[2];
    let mut instances = Vec::with_capacity(n);
    for i in 0..n {
        let raw = &images.data[i * pixels_per..(i + 1) * pixels_per];
        instances.push(Vector(raw.iter().map(|&b| b as f64 / 255.0).collect()));
    }
    let label_vec: Vec<usize> = labels.data.iter().map(|&b| b as usize).collect();
    Dataset::new(instances, label_vec, num_classes)
        .map_err(|e| IdxError::Inconsistent(e.to_string()))
}

/// Converts a [`Dataset`] of `[0,1]` images back into an IDX pair
/// (quantizing to bytes). Useful for exporting synthetic data for external
/// tools.
///
/// # Panics
/// Panics when `dataset.dim() != height * width`.
pub fn dataset_to_idx(dataset: &Dataset, height: usize, width: usize) -> (IdxTensor, IdxTensor) {
    assert_eq!(dataset.dim(), height * width, "dataset dim is not h*w");
    let mut image_data = Vec::with_capacity(dataset.len() * dataset.dim());
    for (x, _) in dataset.iter() {
        image_data.extend(x.iter().map(|p| (p.clamp(0.0, 1.0) * 255.0).round() as u8));
    }
    let images = IdxTensor {
        shape: vec![dataset.len(), height, width],
        data: image_data,
    };
    let labels = IdxTensor {
        shape: vec![dataset.len()],
        data: dataset.labels().iter().map(|&l| l as u8).collect(),
    };
    (images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthStyle};

    fn tiny_images() -> IdxTensor {
        // 2 images of 2×3.
        IdxTensor {
            shape: vec![2, 2, 3],
            data: vec![0, 255, 128, 64, 32, 16, 255, 255, 0, 0, 1, 2],
        }
    }

    #[test]
    fn round_trip_parse_serialize() {
        let t = tiny_images();
        let bytes = t.to_bytes();
        let parsed = IdxTensor::parse(&bytes).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = tiny_images().to_bytes();
        bytes[0] = 1; // nonzero prefix
        assert!(matches!(
            IdxTensor::parse(&bytes),
            Err(IdxError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_type() {
        let mut bytes = tiny_images().to_bytes();
        bytes[2] = 0x0d; // float type, unsupported
        assert!(matches!(
            IdxTensor::parse(&bytes),
            Err(IdxError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut bytes = tiny_images().to_bytes();
        bytes.truncate(bytes.len() - 4);
        assert!(matches!(
            IdxTensor::parse(&bytes),
            Err(IdxError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_short_header() {
        assert!(matches!(
            IdxTensor::parse(&[0, 0]),
            Err(IdxError::BadHeader(_))
        ));
    }

    #[test]
    fn loads_dataset_with_normalization() {
        let images = tiny_images();
        let labels = IdxTensor {
            shape: vec![2],
            data: vec![1, 0],
        };
        let ds = load_image_dataset(&images, &labels, 2).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 6);
        assert_eq!(ds.label(0), 1);
        assert!((ds.instance(0)[1] - 1.0).abs() < 1e-12);
        assert!((ds.instance(0)[2] - 128.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn detects_count_mismatch() {
        let images = tiny_images();
        let labels = IdxTensor {
            shape: vec![3],
            data: vec![0, 1, 0],
        };
        assert!(matches!(
            load_image_dataset(&images, &labels, 2),
            Err(IdxError::Inconsistent(_))
        ));
    }

    #[test]
    fn detects_label_overflow() {
        let images = tiny_images();
        let labels = IdxTensor {
            shape: vec![2],
            data: vec![0, 9],
        };
        assert!(matches!(
            load_image_dataset(&images, &labels, 2),
            Err(IdxError::Inconsistent(_))
        ));
    }

    #[test]
    fn synthetic_dataset_round_trips_through_idx() {
        let (train, _) = SynthConfig::small(SynthStyle::MnistLike, 10, 10, 3).generate();
        let (images, labels) = dataset_to_idx(&train, 28, 28);
        let back = load_image_dataset(&images, &labels, 10).unwrap();
        assert_eq!(back.len(), train.len());
        assert_eq!(back.labels(), train.labels());
        // Quantization to u8 loses at most 1/510 per pixel.
        for i in 0..train.len() {
            let d = back.instance(i).l1_distance(train.instance(i)).unwrap();
            assert!(
                d <= train.dim() as f64 / 509.0,
                "quantization error too large: {d}"
            );
        }
    }
}
