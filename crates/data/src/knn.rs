//! Exact nearest-neighbour search.
//!
//! The consistency experiment (Figure 4) pairs every evaluated instance with
//! its Euclidean nearest neighbour in the test set and compares their
//! interpretations. Test sets here are ≤ 10k instances of dimension 784, so
//! exact brute-force search with early abandoning is both simple and fast
//! enough; no approximate index is warranted.

use crate::dataset::Dataset;
use openapi_linalg::Vector;

/// Finds the index of the instance in `dataset` nearest to `query` in
/// Euclidean distance, excluding `exclude` (pass `None` to consider all).
///
/// Returns `None` only when every candidate is excluded.
///
/// Uses squared distances with early abandoning: the running sum stops as
/// soon as it exceeds the best distance so far — a large constant-factor win
/// at `d = 784`.
pub fn nearest_neighbor(
    dataset: &Dataset,
    query: &Vector,
    exclude: Option<usize>,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for i in 0..dataset.len() {
        if Some(i) == exclude {
            continue;
        }
        let cand = dataset.instance(i);
        let bound = best.map(|(_, d)| d).unwrap_or(f64::INFINITY);
        if let Some(d2) = bounded_sq_dist(query, cand, bound) {
            if best.map(|(_, bd)| d2 < bd).unwrap_or(true) {
                best = Some((i, d2));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Squared Euclidean distance, abandoning early once it exceeds `bound`.
/// Returns `None` when abandoned.
fn bounded_sq_dist(a: &Vector, b: &Vector, bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    // Check the bound every 32 coordinates: often enough to abandon early,
    // rarely enough that the branch is amortized.
    for chunk in a.as_slice().chunks(32).zip(b.as_slice().chunks(32)) {
        for (x, y) in chunk.0.iter().zip(chunk.1.iter()) {
            let d = x - y;
            acc += d * d;
        }
        if acc > bound {
            return None;
        }
    }
    Some(acc)
}

/// Computes, for each instance in `queries`, the index of its nearest
/// neighbour within `dataset`. When `queries` *is* the dataset (the Figure 4
/// protocol), pass `self_indices = true` to exclude each instance from its
/// own search.
pub fn all_nearest_neighbors(
    dataset: &Dataset,
    queries: &Dataset,
    self_indices: bool,
) -> Vec<usize> {
    (0..queries.len())
        .map(|i| {
            let exclude = self_indices.then_some(i);
            nearest_neighbor(dataset, queries.instance(i), exclude)
                .expect("dataset must contain at least one non-excluded instance")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        Dataset::new(
            vec![
                Vector(vec![0.0, 0.0]),
                Vector(vec![1.0, 0.0]),
                Vector(vec![0.0, 1.0]),
                Vector(vec![5.0, 5.0]),
            ],
            vec![0, 0, 0, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn finds_closest_point() {
        let d = grid();
        let q = Vector(vec![0.9, 0.1]);
        assert_eq!(nearest_neighbor(&d, &q, None), Some(1));
    }

    #[test]
    fn exclusion_skips_self_match() {
        let d = grid();
        let q = d.instance(0).clone();
        assert_eq!(nearest_neighbor(&d, &q, None), Some(0));
        let nn = nearest_neighbor(&d, &q, Some(0)).unwrap();
        assert!(nn == 1 || nn == 2, "either unit vector is at distance 1");
    }

    #[test]
    fn exclusion_of_everything_returns_none() {
        let d = Dataset::new(vec![Vector(vec![1.0])], vec![0], 1).unwrap();
        assert_eq!(nearest_neighbor(&d, &Vector(vec![0.0]), Some(0)), None);
    }

    #[test]
    fn ties_resolve_to_lower_index() {
        let d = Dataset::new(
            vec![Vector(vec![1.0, 0.0]), Vector(vec![-1.0, 0.0])],
            vec![0, 0],
            1,
        )
        .unwrap();
        // Exactly equidistant: strict < keeps the first.
        assert_eq!(nearest_neighbor(&d, &Vector(vec![0.0, 0.0]), None), Some(0));
    }

    #[test]
    fn all_pairs_protocol_matches_pointwise() {
        let d = grid();
        let nns = all_nearest_neighbors(&d, &d, true);
        assert_eq!(nns.len(), d.len());
        for (i, &nn) in nns.iter().enumerate() {
            assert_ne!(nn, i, "self must be excluded");
            let direct = nearest_neighbor(&d, d.instance(i), Some(i)).unwrap();
            assert_eq!(nn, direct);
        }
    }

    #[test]
    fn early_abandoning_agrees_with_full_scan_high_dim() {
        // 40 instances of dimension 100: verify the bound logic never skips
        // the true nearest neighbour.
        let n = 40;
        let dim = 100;
        let instances: Vec<Vector> = (0..n)
            .map(|i| {
                Vector(
                    (0..dim)
                        .map(|j| (((i * 7919 + j * 104729) % 1000) as f64) / 500.0 - 1.0)
                        .collect(),
                )
            })
            .collect();
        let d = Dataset::new(instances.clone(), vec![0; n], 1).unwrap();
        for q in 0..n {
            let fast = nearest_neighbor(&d, &instances[q], Some(q)).unwrap();
            // Exhaustive reference.
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for (i, cand) in instances.iter().enumerate() {
                if i == q {
                    continue;
                }
                let dd = instances[q].l2_distance(cand).unwrap();
                if dd < best_d {
                    best_d = dd;
                    best = i;
                }
            }
            assert_eq!(fast, best, "query {q}");
        }
    }
}
