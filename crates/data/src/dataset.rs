//! In-memory labeled dataset.

use openapi_linalg::Vector;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A labeled classification dataset: `n` instances of dimension `d` with
/// labels in `0..num_classes`.
///
/// Invariants (enforced at construction):
/// * every instance has the same dimension,
/// * every label is `< num_classes`,
/// * `instances.len() == labels.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    instances: Vec<Vector>,
    labels: Vec<usize>,
    num_classes: usize,
    dim: usize,
}

/// Errors constructing or manipulating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// `instances` and `labels` lengths differ.
    LengthMismatch {
        /// Number of instances provided.
        instances: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// An instance's dimension differs from the first instance's.
    RaggedInstances {
        /// Index of the offending instance.
        index: usize,
        /// Expected dimensionality.
        expected: usize,
        /// Found dimensionality.
        found: usize,
    },
    /// A label is out of range.
    LabelOutOfRange {
        /// Index of the offending label.
        index: usize,
        /// The label value found.
        label: usize,
        /// The exclusive upper bound.
        num_classes: usize,
    },
    /// The dataset has no instances where at least one is required.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { instances, labels } => {
                write!(f, "{instances} instances but {labels} labels")
            }
            DatasetError::RaggedInstances {
                index,
                expected,
                found,
            } => {
                write!(
                    f,
                    "instance {index} has dimension {found}, expected {expected}"
                )
            }
            DatasetError::LabelOutOfRange {
                index,
                label,
                num_classes,
            } => {
                write!(
                    f,
                    "label {label} at index {index} exceeds {num_classes} classes"
                )
            }
            DatasetError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Constructs a dataset, validating all invariants.
    ///
    /// # Errors
    /// See [`DatasetError`].
    pub fn new(
        instances: Vec<Vector>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if instances.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                instances: instances.len(),
                labels: labels.len(),
            });
        }
        if instances.is_empty() {
            return Err(DatasetError::Empty);
        }
        let dim = instances[0].len();
        for (i, inst) in instances.iter().enumerate() {
            if inst.len() != dim {
                return Err(DatasetError::RaggedInstances {
                    index: i,
                    expected: dim,
                    found: inst.len(),
                });
            }
        }
        for (i, &l) in labels.iter().enumerate() {
            if l >= num_classes {
                return Err(DatasetError::LabelOutOfRange {
                    index: i,
                    label: l,
                    num_classes,
                });
            }
        }
        Ok(Dataset {
            instances,
            labels,
            num_classes,
            dim,
        })
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// `true` when the dataset holds no instances (unreachable through
    /// [`Dataset::new`], but kept for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Feature dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes `C`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow instance `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn instance(&self, i: usize) -> &Vector {
        &self.instances[i]
    }

    /// Label of instance `i`.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All instances.
    pub fn instances(&self) -> &[Vector] {
        &self.instances
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Iterates `(instance, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vector, usize)> {
        self.instances.iter().zip(self.labels.iter().copied())
    }

    /// Splits into `(front, back)` at `front_len` instances, preserving
    /// order. Useful for deterministic train/test partitions of
    /// already-shuffled data.
    ///
    /// # Panics
    /// Panics when `front_len` is 0 or ≥ `len()` (both halves must be
    /// non-empty to satisfy the dataset invariant).
    pub fn split_at(mut self, front_len: usize) -> (Dataset, Dataset) {
        assert!(
            front_len > 0 && front_len < self.len(),
            "split_at({front_len}) must leave both halves non-empty (len {})",
            self.len()
        );
        let back_inst = self.instances.split_off(front_len);
        let back_labels = self.labels.split_off(front_len);
        let front = Dataset {
            instances: self.instances,
            labels: self.labels,
            num_classes: self.num_classes,
            dim: self.dim,
        };
        let back = Dataset {
            instances: back_inst,
            labels: back_labels,
            num_classes: self.num_classes,
            dim: self.dim,
        };
        (front, back)
    }

    /// Shuffles instances and labels together.
    pub fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.instances = order.iter().map(|&i| self.instances[i].clone()).collect();
        self.labels = order.iter().map(|&i| self.labels[i]).collect();
    }

    /// Draws `n` instance indices uniformly without replacement.
    ///
    /// # Panics
    /// Panics when `n > len()`.
    pub fn sample_indices<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        assert!(n <= self.len(), "cannot sample {n} of {}", self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        idx
    }

    /// Returns a new dataset containing the given indices (cloned).
    ///
    /// # Panics
    /// Panics when `indices` is empty or any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "subset of zero indices");
        Dataset {
            instances: indices.iter().map(|&i| self.instances[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
            dim: self.dim,
        }
    }

    /// Per-class instance counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// The mean instance of class `c` (None when the class is empty) —
    /// Figure 2's "averaged images".
    pub fn class_mean(&self, c: usize) -> Option<Vector> {
        let mut acc = Vector::zeros(self.dim);
        let mut n = 0usize;
        for (x, l) in self.iter() {
            if l == c {
                acc.axpy(1.0, x).expect("dimension invariant");
                n += 1;
            }
        }
        (n > 0).then(|| {
            acc.scale(1.0 / n as f64);
            acc
        })
    }

    /// Majority label of the dataset (ties toward the lower label).
    pub fn majority_label(&self) -> usize {
        let counts = self.class_counts();
        let mut best = 0;
        for (c, &n) in counts.iter().enumerate() {
            if n > counts[best] {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        Dataset::new(
            vec![
                Vector(vec![0.0, 0.0]),
                Vector(vec![1.0, 0.0]),
                Vector(vec![0.0, 1.0]),
                Vector(vec![1.0, 1.0]),
            ],
            vec![0, 1, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let e = Dataset::new(vec![Vector::zeros(2)], vec![0, 1], 2);
        assert!(matches!(e, Err(DatasetError::LengthMismatch { .. })));
    }

    #[test]
    fn construction_validates_dimensions() {
        let e = Dataset::new(vec![Vector::zeros(2), Vector::zeros(3)], vec![0, 0], 1);
        assert!(matches!(
            e,
            Err(DatasetError::RaggedInstances { index: 1, .. })
        ));
    }

    #[test]
    fn construction_validates_labels() {
        let e = Dataset::new(vec![Vector::zeros(2)], vec![5], 2);
        assert!(matches!(
            e,
            Err(DatasetError::LabelOutOfRange { label: 5, .. })
        ));
    }

    #[test]
    fn construction_rejects_empty() {
        assert!(matches!(
            Dataset::new(vec![], vec![], 2),
            Err(DatasetError::Empty)
        ));
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.label(3), 1);
        assert_eq!(d.instance(1).as_slice(), &[1.0, 0.0]);
        assert_eq!(d.iter().count(), 4);
    }

    #[test]
    fn split_preserves_order_and_counts() {
        let (a, b) = tiny().split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(a.label(0), 0);
        assert_eq!(b.label(0), 1);
        assert_eq!(a.num_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn split_rejects_degenerate_front() {
        let _ = tiny().split_at(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut d = tiny();
        let mut rng = StdRng::seed_from_u64(3);
        d.shuffle(&mut rng);
        assert_eq!(d.len(), 4);
        let mut counts = d.class_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 3]);
    }

    #[test]
    fn shuffle_keeps_instance_label_pairs() {
        let mut d = tiny();
        let mut rng = StdRng::seed_from_u64(11);
        d.shuffle(&mut rng);
        // In `tiny`, label 0 is exactly the all-zero instance.
        for (x, l) in d.iter() {
            let is_origin = x.as_slice() == [0.0, 0.0];
            assert_eq!(l == 0, is_origin);
        }
    }

    #[test]
    fn sample_indices_without_replacement() {
        let d = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = d.sample_indices(4, &mut rng);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn subset_clones_selected_rows() {
        let d = tiny();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(0), 1);
        assert_eq!(s.instance(1).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn class_statistics() {
        let d = tiny();
        assert_eq!(d.class_counts(), vec![1, 3]);
        assert_eq!(d.majority_label(), 1);
        let m1 = d.class_mean(1).unwrap();
        assert!((m1[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((m1[1] - 2.0 / 3.0).abs() < 1e-12);
        // Empty class: num_classes can exceed observed labels.
        let d2 = Dataset::new(vec![Vector::zeros(1)], vec![0], 3).unwrap();
        assert!(d2.class_mean(2).is_none());
    }
}
