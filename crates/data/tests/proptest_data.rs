//! Property-based tests of the data substrate: generator invariants, IDX
//! round-trips, k-NN correctness, and pooling algebra.

use openapi_data::dataset::Dataset;
use openapi_data::idx::{dataset_to_idx, load_image_dataset, IdxTensor};
use openapi_data::knn::nearest_neighbor;
use openapi_data::synth::{SynthConfig, SynthStyle, DIM, NUM_CLASSES};
use openapi_data::transform::downsample;
use openapi_linalg::Vector;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated datasets always satisfy the shape/range contract.
    #[test]
    fn generated_datasets_respect_contract(
        seed in 0u64..10_000,
        train in 10usize..60,
        test in 10usize..30,
        style in prop::sample::select(vec![SynthStyle::MnistLike, SynthStyle::FmnistLike]),
    ) {
        let (tr, te) = SynthConfig::small(style, train, test, seed).generate();
        prop_assert_eq!(tr.len(), train);
        prop_assert_eq!(te.len(), test);
        prop_assert_eq!(tr.dim(), DIM);
        prop_assert_eq!(tr.num_classes(), NUM_CLASSES);
        for (x, l) in tr.iter().chain(te.iter()) {
            prop_assert!(l < NUM_CLASSES);
            prop_assert!(x.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    /// IDX round-trip keeps labels exact and pixels within quantization.
    #[test]
    fn idx_round_trip_is_lossless_up_to_quantization(
        seed in 0u64..10_000,
        n in 5usize..20,
    ) {
        let (tr, _) = SynthConfig::small(SynthStyle::FmnistLike, n, 5, seed).generate();
        let (images, labels) = dataset_to_idx(&tr, 28, 28);
        // Serialize + parse the raw bytes too.
        let images = IdxTensor::parse(&images.to_bytes()).expect("image bytes");
        let labels = IdxTensor::parse(&labels.to_bytes()).expect("label bytes");
        let back = load_image_dataset(&images, &labels, NUM_CLASSES).expect("round trip");
        prop_assert_eq!(back.labels(), tr.labels());
        for i in 0..tr.len() {
            let d = back.instance(i).l1_distance(tr.instance(i)).unwrap();
            prop_assert!(d <= DIM as f64 / 509.0);
        }
    }

    /// The nearest neighbour really is the argmin of Euclidean distance.
    #[test]
    fn knn_is_argmin(
        points in prop::collection::vec(
            prop::collection::vec(-5.0f64..5.0, 6), 2..25),
        query in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        let n = points.len();
        let ds = Dataset::new(
            points.iter().cloned().map(Vector).collect(),
            vec![0; n],
            1,
        ).expect("valid dataset");
        let q = Vector(query);
        let found = nearest_neighbor(&ds, &q, None).expect("non-empty");
        let found_d = q.l2_distance(ds.instance(found)).unwrap();
        for i in 0..n {
            let d = q.l2_distance(ds.instance(i)).unwrap();
            prop_assert!(found_d <= d + 1e-12, "index {} at {} beats {} at {}", i, d, found, found_d);
        }
    }

    /// Pooling then total mass equals the original mass scaled by factor².
    #[test]
    fn pooling_conserves_mass(seed in 0u64..10_000) {
        let (tr, _) = SynthConfig::small(SynthStyle::MnistLike, 10, 5, seed).generate();
        for factor in [2usize, 4, 7, 14] {
            let pooled = downsample(&tr, factor);
            prop_assert_eq!(pooled.dim(), (28 / factor) * (28 / factor));
            for i in 0..tr.len() {
                let m0: f64 = tr.instance(i).iter().sum();
                let m1: f64 = pooled.instance(i).iter().sum();
                prop_assert!((m0 - m1 * (factor * factor) as f64).abs() < 1e-9);
            }
        }
    }

    /// Class means exist for every class in balanced splits and are valid
    /// images.
    #[test]
    fn class_means_are_valid_images(seed in 0u64..10_000) {
        let (tr, _) = SynthConfig::small(SynthStyle::FmnistLike, 30, 10, seed).generate();
        for c in 0..NUM_CLASSES {
            let mean = tr.class_mean(c).expect("balanced split");
            prop_assert!(mean.iter().all(|p| (0.0..=1.0).contains(p)));
            prop_assert!(mean.iter().sum::<f64>() > 0.0, "class {} mean is black", c);
        }
    }
}
