#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `openapi-fabric` — anti-entropy replication of solved regions, so N
//! servers fronting one hidden model pay each Algorithm-1 solve once
//! *cluster-wide*.
//!
//! Theorem 2 makes replication embarrassingly easy: a solved region's
//! interpretation is exact, immutable, and content-addressed (its record
//! frame's CRC-64/XZ names its exact bytes), so replicating region stores
//! is append-only set union — conflicts are impossible, and any gossip
//! interleaving converges to the same set. This crate exploits that with
//! classic anti-entropy *pull* gossip over the existing `openapi-net`
//! wire protocol:
//!
//! 1. **Digest** — [`Client::sync_digest`] fetches the peer's
//!    [`openapi_store::StoreDigest`]: 64 buckets of (XOR of sync keys,
//!    count). Equal digests ⇒ equal record sets (w.h.p.); differing
//!    buckets localize what to fetch.
//! 2. **Pull** — [`Client::sync_pull`] names the differing buckets and
//!    the sync keys already held there; the peer ships the absent record
//!    frames *verbatim* — the exact bytes sitting in its WAL.
//! 3. **Validate + ingest** — each pulled frame is CRC-verified, checked
//!    against the local model's shape, spot-checked for self-consistency
//!    (the record's parameters must explain the probe they themselves
//!    induce — the identical `explains_probe` test the serving path
//!    applies), then appended to the local store and promoted into the
//!    shared cache. Because `openapi-store`'s record codec is
//!    deterministic, the re-encoded local record is byte-identical to the
//!    peer's — remote and local interpretations of one region are the
//!    same bits.
//!
//! Tombstones ride the same union: a region invalidated for drift (the
//! hidden model stopped explaining it — see `openapi-serve`'s drift
//! detector) is itself an immutable fact, and the store's digest and
//! delta cover tombstone frames like any other record. A pulled tombstone
//! is applied through [`ServiceCore::apply_tombstone`] — cache eviction
//! plus durable suppression — and because the store's admit refuses live
//! records for tombstoned keys, no gossip interleaving can resurrect a
//! forgotten region.
//!
//! Model safety: interpretations are exact statements *about one
//! function*. A peer declaring a different `(dim, num_classes,
//! model_id)` in its server hello is refused at connect
//! ([`FabricError::ModelMismatch`]), and servers independently refuse
//! sync requests from mismatched callers with a typed
//! [`openapi_net::ErrorCode::ModelMismatch`] — the fabric never merges
//! stores of different hidden models.
//!
//! [`FabricNode::spawn`] runs the loop in the background (round-robin
//! over configured peers, one exchange per tick); [`sync_peer_once`] runs
//! one bounded exchange synchronously — tests drive it to deterministic
//! convergence without timing assumptions.

use openapi_api::PredictionApi;
use openapi_core::decision::Interpretation;
use openapi_linalg::Vector;
use openapi_net::{Client, ClientError, ModelInfo};
use openapi_serve::{FabricStats, ServiceCore};
use openapi_store::record::{self, StoreRecord};
use openapi_trace::{RequestSpan, Stage};
use std::fmt;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for a [`FabricNode`] (and the bounds of
/// [`sync_peer_once`]).
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Peer addresses (`host:port`) to gossip with, round-robin. Empty
    /// peers make [`FabricNode::spawn`] a no-op loop that exits at once.
    pub peers: Vec<String>,
    /// Pause between gossip ticks (one peer exchange per tick).
    pub interval: Duration,
    /// Soft cap on record-frame bytes fetched per pull; a truncated reply
    /// is followed up within the same exchange, so the cap bounds memory,
    /// not progress.
    pub max_pull_bytes: usize,
    /// This node's model identity, declared to peers and matched against
    /// their hellos (see [`ModelInfo::model_id`]). `0` checks shape only.
    pub model_id: u64,
    /// Most digest→pull rounds one [`sync_peer_once`] call runs before
    /// giving up on convergence (clamped to ≥ 1). Bounds the damage of a
    /// byzantine peer whose digest never settles.
    pub max_rounds: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            peers: Vec::new(),
            interval: Duration::from_millis(250),
            max_pull_bytes: 1 << 20,
            model_id: 0,
            max_rounds: 8,
        }
    }
}

/// Why one peer exchange failed.
#[derive(Debug)]
pub enum FabricError {
    /// The transport or protocol failed (includes typed server refusals
    /// such as [`openapi_net::ErrorCode::NoStore`]).
    Client(ClientError),
    /// The peer fronts a different hidden model; syncing would merge
    /// interpretations of different functions, so nothing was exchanged.
    ModelMismatch {
        /// This node's model declaration.
        local: ModelInfo,
        /// What the peer's hello declared.
        remote: ModelInfo,
    },
    /// This node runs without a durable region store, so it has nothing
    /// to sync into (or out of).
    NoLocalStore,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Client(e) => write!(f, "peer exchange: {e}"),
            FabricError::ModelMismatch { local, remote } => write!(
                f,
                "model mismatch: local {}x{} id {}, peer {}x{} id {}",
                local.dim,
                local.num_classes,
                local.model_id,
                remote.dim,
                remote.num_classes,
                remote.model_id
            ),
            FabricError::NoLocalStore => {
                write!(f, "this node has no durable region store to sync")
            }
        }
    }
}

impl std::error::Error for FabricError {}

impl From<ClientError> for FabricError {
    fn from(e: ClientError) -> Self {
        FabricError::Client(e)
    }
}

/// Why a pulled record was refused at ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestReject {
    /// The frame failed CRC or record decoding — the rest of the pulled
    /// blob cannot be re-synchronized and is dropped with it.
    BadFrame,
    /// The record's class is outside the local model's class range.
    ClassOutOfRange,
    /// A contrast class is out of range, or equals the record's own class.
    BadContrast,
    /// A contrast's weight vector disagrees with the local model's input
    /// dimension.
    DimensionMismatch,
    /// The record carries no core parameters (attribution-only records
    /// never travel the fabric — they cannot pass membership checks).
    NoCoreParams,
    /// A parameter is NaN or infinite.
    NonFinite,
    /// The record failed the structural self-check: its own parameters do
    /// not explain the probe they induce.
    FailedSelfCheck,
}

impl fmt::Display for IngestReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            IngestReject::BadFrame => "frame failed CRC or decode",
            IngestReject::ClassOutOfRange => "class out of range",
            IngestReject::BadContrast => "contrast class out of domain",
            IngestReject::DimensionMismatch => "weight dimension mismatch",
            IngestReject::NoCoreParams => "no core parameters",
            IngestReject::NonFinite => "non-finite parameter",
            IngestReject::FailedSelfCheck => "failed structural self-check",
        };
        f.write_str(what)
    }
}

/// What one [`sync_peer_once`] exchange accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Digest→pull rounds run.
    pub rounds: u64,
    /// Record frames the peer shipped.
    pub pulled_records: u64,
    /// Bytes of record frames the peer shipped.
    pub pulled_bytes: u64,
    /// Pulled records validated and ingested locally.
    pub ingested: u64,
    /// Pulled records the local store already held.
    pub duplicates: u64,
    /// Pulled records refused by validation.
    pub rejected: u64,
    /// Whether this node now holds everything the peer had (the digests
    /// agreed, or the last pull came back empty and untruncated). The
    /// *peer* converges on its own pull — this flag is one-directional.
    pub converged: bool,
}

/// Runs one bounded anti-entropy exchange against `peer`: digest, pull
/// what is missing, validate, ingest; repeat until this node holds
/// everything the peer had or [`FabricConfig::max_rounds`] is spent.
///
/// Deterministic and synchronous — integration tests drive a cluster to
/// digest equality by calling this from each node in turn, with no
/// reliance on background timing.
///
/// # Errors
/// [`FabricError`] when the node has no store, the peer fronts a
/// different model, or the exchange itself fails. Individual bad
/// *records* are not errors: they are counted in
/// [`SyncReport::rejected`] and the exchange continues.
pub fn sync_peer_once<M: PredictionApi + Send + Sync + 'static>(
    core: &ServiceCore<M>,
    peer: &str,
    config: &FabricConfig,
) -> Result<SyncReport, FabricError> {
    if core.store().is_none() {
        return Err(FabricError::NoLocalStore);
    }
    // Any exchange means the fabric tier is in use: surface its counters
    // in stats snapshots from here on, driven syncs included.
    core.mark_fabric_active();
    let local_model = local_model(core, config.model_id);
    let mut client = Client::connect(peer)?;
    if client.server_model() != local_model {
        return Err(FabricError::ModelMismatch {
            local: local_model,
            remote: client.server_model(),
        });
    }
    let stats = core.fabric_stats();
    let mut report = SyncReport::default();
    for _ in 0..config.max_rounds.max(1) {
        let remote = client.sync_digest(&local_model)?;
        FabricStats::add(&stats.digests, 1);
        RequestSpan::detached().event(Stage::FabricDigest, remote.total());
        let store = core.store().expect("checked above");
        let buckets = store.digest().differing_buckets(&remote);
        if buckets.is_empty() {
            report.converged = true;
            break;
        }
        let have = store.keys_in_buckets(&buckets);
        let delta = client.sync_pull(&buckets, &have, config.max_pull_bytes)?;
        report.rounds += 1;
        report.pulled_records += delta.records;
        report.pulled_bytes += delta.frames.len() as u64;
        FabricStats::add(&stats.pulled_records, delta.records);
        FabricStats::add(&stats.pulled_bytes, delta.frames.len() as u64);
        RequestSpan::detached().event(Stage::FabricPull, delta.records);
        let ingest = ingest_frames(core, &delta.frames, &local_model);
        report.ingested += ingest.ingested;
        report.duplicates += ingest.duplicates;
        report.rejected += ingest.rejected;
        if delta.records == 0 && !delta.truncated {
            // Remaining digest differences are records *we* hold and the
            // peer lacks; its own pull fetches those. One-way converged.
            report.converged = true;
            break;
        }
    }
    Ok(report)
}

/// Per-call ingest tallies (mirrored into [`FabricStats`] as they
/// happen).
#[derive(Debug, Default, Clone, Copy)]
struct IngestSummary {
    ingested: u64,
    duplicates: u64,
    rejected: u64,
}

/// Walks a pulled blob of concatenated record frames: CRC-verify, decode,
/// validate against the local model, spot-check self-consistency, then
/// append to the store and promote into the shared cache. The appended
/// record re-encodes to bytes identical to the peer's frame (the record
/// codec is deterministic), which is the fabric's replication invariant.
fn ingest_frames<M: PredictionApi + Send + Sync + 'static>(
    core: &ServiceCore<M>,
    frames: &[u8],
    model: &ModelInfo,
) -> IngestSummary {
    let stats = core.fabric_stats();
    let rtol = core.config().openapi.rtol;
    let mut buf = frames;
    let mut summary = IngestSummary::default();
    while !buf.is_empty() {
        let before = buf.len();
        let pulled = match record::get_any_record(&mut buf) {
            Ok(pulled) => pulled,
            Err(_) => {
                // Framing is lost: nothing after this point in the blob
                // can be trusted to start on a frame boundary.
                FabricStats::add(&stats.rejected, 1);
                summary.rejected += 1;
                break;
            }
        };
        let frame_bytes = (before - buf.len()) as u64;
        FabricStats::add(&stats.spot_checks, 1);
        match pulled {
            StoreRecord::Live(region) => {
                match validate_record(&region.interpretation, model, rtol) {
                    Err(_reason) => {
                        FabricStats::add(&stats.rejected, 1);
                        summary.rejected += 1;
                    }
                    Ok(()) => {
                        if core.ingest(region.fingerprint, region.interpretation) {
                            FabricStats::add(&stats.ingested, 1);
                            RequestSpan::detached().event(Stage::FabricIngest, frame_bytes);
                            summary.ingested += 1;
                        } else {
                            FabricStats::add(&stats.duplicates, 1);
                            summary.duplicates += 1;
                        }
                    }
                }
            }
            StoreRecord::Tombstone(t) => {
                // A replicated "forget this region" fact. The only shape
                // a tombstone can violate is its class domain; the
                // fingerprint needs no self-check because applying a
                // tombstone for a key nobody holds is a no-op by design
                // (the suppression must land *before* the live record can
                // arrive from a third peer).
                if t.class >= model.num_classes {
                    FabricStats::add(&stats.rejected, 1);
                    summary.rejected += 1;
                } else if core.apply_tombstone(t.class, t.fingerprint) {
                    FabricStats::add(&stats.ingested, 1);
                    RequestSpan::detached().event(Stage::FabricIngest, frame_bytes);
                    summary.ingested += 1;
                } else {
                    FabricStats::add(&stats.duplicates, 1);
                    summary.duplicates += 1;
                }
            }
        }
    }
    summary
}

/// Validates a pulled record against the local model, ending in the
/// structural self-check.
///
/// A live interior-point check is impossible without re-solving (the
/// region's interior is unknowable from its parameters alone), and
/// probing an arbitrary `x` would falsely reject valid records whose
/// region lies elsewhere. Instead: the record's own parameters pin every
/// log-ratio at the origin to its bias, so synthesize exactly the softmax
/// those logits induce and require [`Interpretation::explains_probe`] to
/// pass — the identical test the serving path re-applies per request, so
/// a record that slips through here can still never serve a probe it does
/// not explain.
fn validate_record(
    interpretation: &Interpretation,
    model: &ModelInfo,
    rtol: f64,
) -> Result<(), IngestReject> {
    if interpretation.class >= model.num_classes {
        return Err(IngestReject::ClassOutOfRange);
    }
    if interpretation.pairwise.is_empty() {
        return Err(IngestReject::NoCoreParams);
    }
    for p in &interpretation.pairwise {
        if p.c_prime >= model.num_classes || p.c_prime == interpretation.class {
            return Err(IngestReject::BadContrast);
        }
        if p.weights.len() != model.dim {
            return Err(IngestReject::DimensionMismatch);
        }
        if !p.bias.is_finite() || p.weights.0.iter().any(|w| !w.is_finite()) {
            return Err(IngestReject::NonFinite);
        }
    }
    let x = Vector(vec![0.0; model.dim]);
    let probs = probs_at_origin(interpretation, model.num_classes);
    if !interpretation.explains_probe(&x, &probs, rtol) {
        return Err(IngestReject::FailedSelfCheck);
    }
    Ok(())
}

/// The softmax the record's own parameters induce at `x = 0`: logit 0 for
/// the record's class, `−B_{c,c'}` for each contrast class (so
/// `ln(y_c/y_{c'}) = B_{c,c'}` exactly, which is what `explains_probe`
/// asserts at the origin), 0 for classes no contrast names (never
/// examined by the check).
fn probs_at_origin(interpretation: &Interpretation, num_classes: usize) -> Vec<f64> {
    let mut logits = vec![0.0f64; num_classes];
    for p in &interpretation.pairwise {
        logits[p.c_prime] = -p.bias;
    }
    let max = logits.iter().fold(f64::NEG_INFINITY, |m, &l| m.max(l));
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

/// The model declaration this node makes to peers.
fn local_model<M: PredictionApi + Send + Sync + 'static>(
    core: &ServiceCore<M>,
    model_id: u64,
) -> ModelInfo {
    ModelInfo {
        dim: core.api().dim(),
        num_classes: core.api().num_classes(),
        model_id,
    }
}

/// The background anti-entropy loop: one gossip tick per
/// [`FabricConfig::interval`], round-robin over the configured peers.
///
/// Shut the fabric down **before** closing the server/service it feeds —
/// the node holds a live [`ServiceCore`] clone, and
/// `InterpretationService::close` can only take its store out for a final
/// observable flush once that clone is gone.
#[derive(Debug)]
pub struct FabricNode {
    handle: Option<JoinHandle<()>>,
    stop_tx: mpsc::Sender<()>,
}

impl FabricNode {
    /// Marks the service's fabric tier active (its stats appear in
    /// snapshots and Prometheus output from now on) and starts the gossip
    /// thread.
    pub fn spawn<M: PredictionApi + Send + Sync + 'static>(
        core: ServiceCore<M>,
        config: FabricConfig,
    ) -> FabricNode {
        core.mark_fabric_active();
        FabricStats::add(&core.fabric_stats().peers, config.peers.len() as u64);
        let (stop_tx, stop_rx) = mpsc::channel();
        let handle = std::thread::spawn(move || run_loop(&core, &config, &stop_rx));
        FabricNode {
            handle: Some(handle),
            stop_tx,
        }
    }

    /// Stops the gossip thread and joins it. Dropping the node does the
    /// same; `shutdown` exists to make the ordering explicit at call
    /// sites that close the service next.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let _ = self.stop_tx.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FabricNode {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_loop<M: PredictionApi + Send + Sync + 'static>(
    core: &ServiceCore<M>,
    config: &FabricConfig,
    stop_rx: &mpsc::Receiver<()>,
) {
    if config.peers.is_empty() {
        return;
    }
    let mut next = 0usize;
    loop {
        let peer = &config.peers[next % config.peers.len()];
        next = next.wrapping_add(1);
        let stats = core.fabric_stats();
        FabricStats::add(&stats.rounds, 1);
        if sync_peer_once(core, peer, config).is_err() {
            // A peer being down (or briefly mismatched mid-redeploy) is
            // routine; count it and try again next tick.
            FabricStats::add(&stats.peer_failures, 1);
        }
        match stop_rx.recv_timeout(config.interval) {
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openapi_core::decision::PairwiseCoreParams;

    fn record(class: usize, contrasts: &[(usize, Vec<f64>, f64)]) -> Interpretation {
        Interpretation::from_pairwise(
            class,
            contrasts
                .iter()
                .map(|(c_prime, w, b)| PairwiseCoreParams {
                    c_prime: *c_prime,
                    weights: Vector(w.clone()),
                    bias: *b,
                })
                .collect(),
        )
        .unwrap()
    }

    const MODEL: ModelInfo = ModelInfo {
        dim: 3,
        num_classes: 4,
        model_id: 0,
    };

    #[test]
    fn a_solved_record_passes_validation() {
        let good = record(
            1,
            &[
                (0, vec![0.5, -1.0, 2.0], 0.25),
                (2, vec![1.5, 0.0, -0.5], -1.75),
                (3, vec![-2.0, 1.0, 0.5], 3.0),
            ],
        );
        assert_eq!(validate_record(&good, &MODEL, 1e-6), Ok(()));
    }

    #[test]
    fn shape_and_domain_violations_are_rejected() {
        let wrong_dim = record(0, &[(1, vec![1.0, 2.0], 0.5)]);
        assert_eq!(
            validate_record(&wrong_dim, &MODEL, 1e-6),
            Err(IngestReject::DimensionMismatch)
        );
        let class_oob = record(7, &[(1, vec![1.0, 2.0, 3.0], 0.5)]);
        assert_eq!(
            validate_record(&class_oob, &MODEL, 1e-6),
            Err(IngestReject::ClassOutOfRange)
        );
        let contrast_oob = record(0, &[(9, vec![1.0, 2.0, 3.0], 0.5)]);
        assert_eq!(
            validate_record(&contrast_oob, &MODEL, 1e-6),
            Err(IngestReject::BadContrast)
        );
        let self_contrast = record(2, &[(2, vec![1.0, 2.0, 3.0], 0.5)]);
        assert_eq!(
            validate_record(&self_contrast, &MODEL, 1e-6),
            Err(IngestReject::BadContrast)
        );
        let non_finite = record(0, &[(1, vec![1.0, f64::NAN, 3.0], 0.5)]);
        assert_eq!(
            validate_record(&non_finite, &MODEL, 1e-6),
            Err(IngestReject::NonFinite)
        );
        let no_core = Interpretation::attribution_only(0, Vector(vec![1.0, 2.0, 3.0]));
        assert_eq!(
            validate_record(&no_core, &MODEL, 1e-6),
            Err(IngestReject::NoCoreParams)
        );
    }

    #[test]
    fn inconsistent_contrasts_fail_the_self_check() {
        // Two contrasts against the same class with different biases can
        // never both hold at one probe — the synthesized softmax satisfies
        // (at most) the last, so the check must fire.
        let inconsistent = record(
            0,
            &[
                (1, vec![1.0, 0.0, 0.0], 2.0),
                (1, vec![0.0, 1.0, 0.0], -2.0),
            ],
        );
        assert_eq!(
            validate_record(&inconsistent, &MODEL, 1e-6),
            Err(IngestReject::FailedSelfCheck)
        );
    }

    #[test]
    fn origin_probs_satisfy_every_log_ratio() {
        let good = record(
            2,
            &[
                (0, vec![0.5, -1.0, 2.0], -20.0),
                (1, vec![1.5, 0.0, -0.5], 0.125),
                (3, vec![-2.0, 1.0, 0.5], 17.5),
            ],
        );
        let probs = probs_at_origin(&good, 4);
        assert_eq!(probs.len(), 4);
        for p in &good.pairwise {
            let ratio = (probs[good.class] / probs[p.c_prime]).ln();
            assert!(
                (ratio - p.bias).abs() <= 1e-9 * p.bias.abs().max(1.0),
                "contrast {}: ln ratio {ratio} vs bias {}",
                p.c_prime,
                p.bias
            );
        }
    }
}
