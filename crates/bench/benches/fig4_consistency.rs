//! Figure 4 bench: nearest-neighbour search and interpretation-similarity
//! kernels, with the regenerated mean-CS row.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_bench::{banner, plnn_panel};
use openapi_core::Method;
use openapi_data::knn::{all_nearest_neighbors, nearest_neighbor};
use openapi_metrics::consistency::mean_similarity;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig4(c: &mut Criterion) {
    let panel = plnn_panel();

    banner(
        "Figure 4",
        "mean cosine similarity to nearest neighbour, 4 instances",
    );
    let nns = all_nearest_neighbors(&panel.test, &panel.test, true);
    let mut rng = StdRng::seed_from_u64(4);
    for method in Method::effectiveness_lineup() {
        let mut sims = Vec::new();
        for (i, &nn) in nns.iter().enumerate().take(4) {
            let x0 = panel.test.instance(i);
            let x1 = panel.test.instance(nn);
            let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
            if let (Ok(a), Ok(b)) = (
                method.attribution(&panel.model, x0, class, &mut rng),
                method.attribution(&panel.model, x1, class, &mut rng),
            ) {
                sims.push(a.cosine_similarity(&b).unwrap_or(f64::NAN));
            }
        }
        println!(
            "{:<12} mean CS = {:.4}",
            method.name(),
            mean_similarity(&sims)
        );
    }

    let query = panel.test.instance(0).clone();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("nearest_neighbor_196d_200n", |b| {
        b.iter(|| nearest_neighbor(&panel.test, &query, Some(0)))
    });
    group.bench_function("all_nearest_neighbors_200n", |b| {
        b.iter(|| all_nearest_neighbors(&panel.test, &panel.test, true))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
