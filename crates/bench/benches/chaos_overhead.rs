//! Drift-detection overhead on the calm warm path: what witnessing every
//! serve costs when the hidden model behaves.
//!
//! The drift detector's steady-state price is paid on every successful
//! serve (record the instance → region witness) and on every two-tier
//! miss (consult the witness book). Chaos suites prove the detector
//! *works* (`tests/chaos_drift.rs`); this bench pins what it costs when
//! nothing is wrong, with the same methodology as the tracing-overhead
//! gate in `net_throughput`: back-to-back A/B rounds flipping the
//! `openapi_serve::set_drift_detection_enabled` runtime kill switch, the
//! median round scored, enabled throughput required within 5% of
//! disabled. The measured figures land in `BENCH_chaos.json` at the
//! workspace root — the chaos analogue of `BENCH_trace.json`.
//!
//! The workload serves warm requests through an `InterpretationService`
//! fronting a calm `ChaosApi` (all fault rates zero — the wrapper itself
//! is part of the serving stack under audit), so a request is one
//! membership probe plus a cache hit plus the witness bookkeeping the
//! A/B prices.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_api::{ChaosApi, TwoRegionPlm};
use openapi_bench::banner;
use openapi_linalg::Vector;
use openapi_serve::{set_drift_detection_enabled, InterpretationService, ServiceConfig};
use std::time::Instant;

const DIM: usize = TwoRegionPlm::REFERENCE_DIM;
/// Warm requests per arm-trial of the A/B.
const OVERHEAD_TRIAL: usize = 4800;

/// Eight hot instances alternating between the two regions — the same
/// canonical generator the adversarial suites drive.
fn hot_instances() -> Vec<Vector> {
    (0..8).map(TwoRegionPlm::reference_instance).collect()
}

fn spawn_service() -> InterpretationService<ChaosApi<TwoRegionPlm>> {
    InterpretationService::new(
        ChaosApi::new(TwoRegionPlm::reference(), 0xBE7C),
        ServiceConfig {
            workers: 2,
            seed: 1,
            ..ServiceConfig::default()
        },
    )
}

/// Drives `n` warm requests down one submission stream; returns requests
/// per second.
fn warm_run(svc: &InterpretationService<ChaosApi<TwoRegionPlm>>, n: usize) -> f64 {
    let instances = hot_instances();
    let start = Instant::now();
    for k in 0..n {
        let x = instances[k % instances.len()].clone();
        svc.submit_instance(x, 0).wait().expect("warm serve");
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// The A/B: `(disabled_rps, enabled_rps)` from the median of 8
/// interleaved rounds (both arms of a round run back to back, so
/// background-load drift cancels within a round and the median rejects
/// rounds a scheduler burst skewed entirely), with the detector restored
/// to on afterwards.
fn measure_drift_overhead(svc: &InterpretationService<ChaosApi<TwoRegionPlm>>) -> (f64, f64) {
    let mut rounds: Vec<(f64, f64)> = Vec::new();
    for _round in 0..8 {
        let mut pair = [0f64; 2];
        for (arm, on) in [(0usize, false), (1usize, true)] {
            set_drift_detection_enabled(on);
            pair[arm] = warm_run(svc, OVERHEAD_TRIAL);
        }
        rounds.push((pair[0], pair[1]));
    }
    set_drift_detection_enabled(true);
    // float: total_cmp on finite throughput ratios — a deliberate sort key.
    rounds.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    rounds[rounds.len() / 2]
}

/// Records the measurement as `BENCH_chaos.json` at the workspace root
/// (hand-rolled JSON: the bench has no serializer dep).
fn write_bench_chaos(disabled_rps: f64, enabled_rps: f64, overhead: f64) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root");
    let json = format!(
        "{{\n  \"bench\": \"chaos_overhead drift detection\",\n  \
         \"workload\": \"1 stream x {OVERHEAD_TRIAL} warm requests per trial, median of 8 interleaved A/B rounds\",\n  \
         \"disabled_rps\": {disabled_rps:.0},\n  \
         \"enabled_rps\": {enabled_rps:.0},\n  \
         \"overhead_fraction\": {overhead:.4},\n  \
         \"budget_fraction\": 0.05\n}}\n"
    );
    if let Err(err) = std::fs::write(root.join("BENCH_chaos.json"), json) {
        eprintln!("could not write BENCH_chaos.json: {err}");
    }
}

fn bench_chaos_overhead(c: &mut Criterion) {
    banner(
        "chaos overhead",
        &format!("warm serving with the drift detector off/on, two-region PLM, d = {DIM}"),
    );
    let svc = spawn_service();

    // Warm the cache: the only Algorithm-1 solves of the whole bench.
    for x in &hot_instances() {
        svc.submit_instance(x.clone(), 0).wait().expect("warmup");
    }
    let cold = svc.stats();
    assert_eq!(cold.misses, 2, "two regions, two solves");

    let (disabled_rps, enabled_rps) = measure_drift_overhead(&svc);
    let overhead = (disabled_rps - enabled_rps) / disabled_rps;
    println!(
        "drift off     : {disabled_rps:>8.0} req/s\n\
         drift on      : {enabled_rps:>8.0} req/s\n\
         overhead {:.2}% (budget 5%)",
        overhead * 100.0
    );

    // The calm path stayed calm: every timed request was a warm hit, no
    // drift was detected, and the enabled arms recorded witnesses.
    let warm = svc.stats();
    assert_eq!(warm.misses, cold.misses, "warm phase must not solve");
    assert_eq!(warm.failures, 0);
    let drift = warm.drift.expect("service stats carry drift counters");
    assert_eq!(drift.detected, 0, "a calm model must never read as drift");
    assert!(
        drift.witnesses > 0,
        "enabled arms must witness their serves"
    );

    write_bench_chaos(disabled_rps, enabled_rps, overhead);
    assert!(
        overhead < 0.05,
        "drift detection must cost under 5% of warm throughput: \
         {enabled_rps:.0} req/s enabled vs {disabled_rps:.0} req/s disabled"
    );

    let mut group = c.benchmark_group("chaos_overhead");
    group.sample_size(10);
    group.bench_function("warm_interpret_detector_on", |b| {
        let x = hot_instances()[0].clone();
        b.iter(|| {
            svc.submit_instance(x.clone(), 0)
                .wait()
                .expect("warm serve")
                .queries
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chaos_overhead);
criterion_main!(benches);
