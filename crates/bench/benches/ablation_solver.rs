//! Ablation bench: the two consistency-check strategies across problem
//! sizes — the core `O((d+2)³)` kernel of Algorithm 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openapi_api::LinearSoftmaxModel;
use openapi_core::equations::{ConsistencySolver, EquationSystem, Probe};
use openapi_core::sampler::sample_many;
use openapi_linalg::solve::ConsistencyStrategy;
use openapi_linalg::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_system(d: usize, c_total: usize, seed: u64) -> EquationSystem {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = Matrix::from_fn(d, c_total, |_, _| rng.gen_range(-1.0..1.0));
    let bias = Vector((0..c_total).map(|_| rng.gen_range(-0.5..0.5)).collect());
    let model = LinearSoftmaxModel::new(w, bias);
    let x0 = Vector((0..d).map(|_| rng.gen_range(0.0..1.0)).collect());
    let mut probes = vec![Probe::query(&model, x0.clone())];
    for x in sample_many(x0.as_slice(), 0.5, d + 1, &mut rng) {
        probes.push(Probe::query(&model, x));
    }
    EquationSystem::new(probes)
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solver");
    group.sample_size(10);
    for d in [64usize, 196, 784] {
        let system = make_system(d, 10, d as u64);
        for (label, strategy) in [
            ("square", ConsistencyStrategy::SquareThenCheck),
            ("lstsq", ConsistencyStrategy::LeastSquares),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("factor_and_9_checks_{label}"), d),
                &d,
                |b, _| {
                    b.iter(|| {
                        let solver =
                            ConsistencySolver::new(&system, strategy, 1e-6).expect("full rank");
                        // All C−1 = 9 contrasts, as Algorithm 1 does per
                        // iteration.
                        for c_prime in 1..10 {
                            let rhs = system.rhs(0, c_prime);
                            let _ = solver.check(&rhs, c_prime).expect("solvable");
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
