//! Extension bench: reverse-engineering extraction, agreement validation,
//! and boundary probing (paper §VI future work).

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_bench::{banner, plnn_panel};
use openapi_core::openapi::OpenApiConfig;
use openapi_core::reverse::{agreement_rate, boundary_probe, ReconstructedPlm};
use openapi_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_reverse(c: &mut Criterion) {
    let panel = plnn_panel();
    let x0 = panel.test.instance(0).clone();
    let mut rng = StdRng::seed_from_u64(12);
    let recon = ReconstructedPlm::extract(&panel.model, &x0, &OpenApiConfig::default(), &mut rng)
        .expect("interior instance");

    banner("Extension A2", "reconstruction agreement at bench scale");
    let near = agreement_rate(&panel.model, &recon, &x0, 1e-3, 100, 1e-6, &mut rng);
    let far = agreement_rate(&panel.model, &recon, &x0, 0.5, 100, 1e-6, &mut rng);
    println!("agreement near = {near:.3}, wide-cube = {far:.3}");

    let mut group = c.benchmark_group("ablation_reverse");
    group.sample_size(10);
    group.bench_function("extract_local_classifier_196d", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| ReconstructedPlm::extract(&panel.model, &x0, &OpenApiConfig::default(), &mut rng))
    });
    group.bench_function("agreement_rate_100_probes", |b| {
        let mut rng = StdRng::seed_from_u64(14);
        b.iter(|| agreement_rate(&panel.model, &recon, &x0, 1e-3, 100, 1e-6, &mut rng))
    });
    group.bench_function("boundary_probe_bisection", |b| {
        let dir = Vector::basis(x0.len(), 0);
        b.iter(|| boundary_probe(&panel.model, &recon, &x0, &dir, 2.0, 1e-4, 1e-9))
    });
    group.finish();
}

criterion_group!(benches, bench_reverse);
criterion_main!(benches);
