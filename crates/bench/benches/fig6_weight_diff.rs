//! Figure 6 bench: the Weight Difference kernel (per-sample ground-truth
//! extraction and pairwise L1 accumulation), with the regenerated mean-WD
//! column.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_bench::{banner, plnn_panel};
use openapi_core::Method;
use openapi_metrics::samples::method_samples;
use openapi_metrics::weight_difference;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig6(c: &mut Criterion) {
    let panel = plnn_panel();

    banner("Figure 6", "mean Weight Difference over 3 instances");
    let mut rng = StdRng::seed_from_u64(8);
    for method in Method::quality_lineup() {
        let mut total = 0.0;
        let mut n = 0;
        for i in 0..3 {
            let x0 = panel.test.instance(i);
            let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
            if let Some(samples) = method_samples(&method, &panel.model, x0, class, &mut rng) {
                total += weight_difference(&panel.model, x0, class, &samples);
                n += 1;
            }
        }
        if n > 0 {
            println!("{:<12} mean WD = {:.4e}", method.name(), total / n as f64);
        }
    }

    let x0 = panel.test.instance(0).clone();
    let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
    let mut rng = StdRng::seed_from_u64(9);
    let samples = method_samples(&Method::default(), &panel.model, &x0, class, &mut rng)
        .expect("OpenAPI samples");

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("weight_difference_197_samples", |b| {
        b.iter(|| weight_difference(&panel.model, &x0, class, &samples))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
