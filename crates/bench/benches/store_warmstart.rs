//! Warm-start economics of the durable region store: cold solve versus
//! WAL-recovered restart.
//!
//! Workload: 100 instances from the 5 most populous regions of the
//! trained PLNN panel (d = 196), the same hot-region shape
//! `batch_throughput` and `service_throughput` use. Two hard claims are
//! asserted before the criterion timings:
//!
//! 1. **≥ 5× fewer API queries after restart.** A service reopened
//!    against the store directory its previous life wrote must serve the
//!    identical workload for at least 5× fewer prediction queries — every
//!    previously solved region costs one membership probe instead of a
//!    `1 + T·(d+1)`-query Algorithm-1 solve. (Measured: ~140× at d = 196.)
//! 2. **Zero Algorithm-1 solves after restart.** The restarted run's
//!    `misses` counter must be exactly 0 — restart-without-requerying is
//!    a correctness property of the store, not a statistical one.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_api::CountingApi;
use openapi_bench::{banner, hot_region_workload, plnn_panel};
use openapi_linalg::Vector;
use openapi_serve::{InterpretationService, ServiceConfig};
use openapi_sync::atomic::{AtomicU64, Ordering};
use std::path::PathBuf;

const WORKLOAD: usize = 100;
const MAX_REGIONS: usize = 5;
const CLASS: usize = 0;

type PanelApi = CountingApi<&'static openapi_eval::panel::PanelModel>;

/// A unique temp directory per call; the bench removes what it creates.
fn temp_store_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "openapi_bench_store_{tag}_{}_{}",
        std::process::id(),
        // ordering: Relaxed — uniqueness only; nothing published.
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_service(dir: &PathBuf) -> InterpretationService<PanelApi> {
    InterpretationService::open(
        CountingApi::new(&plnn_panel().model),
        ServiceConfig {
            workers: 4,
            seed: 1,
            ..ServiceConfig::default()
        },
        dir,
    )
    .expect("store directory must open")
}

/// Drives the workload through a service and returns the queries spent.
fn run_workload(svc: &InterpretationService<PanelApi>, instances: &[Vector]) -> u64 {
    let before = svc.api().queries();
    let tickets: Vec<_> = instances
        .iter()
        .map(|x| svc.submit_instance(x.clone(), CLASS))
        .collect();
    for t in tickets {
        t.wait().expect("interior instances interpret");
    }
    svc.api().queries() - before
}

fn bench_store_warmstart(c: &mut Criterion) {
    let instances = hot_region_workload(WORKLOAD, MAX_REGIONS);
    banner(
        "store warm start",
        &format!(
            "{WORKLOAD} instances over ≤{MAX_REGIONS} regions, d = 196, cold vs WAL-recovered"
        ),
    );

    // Cold life: solve everything, persist via the WAL, close cleanly.
    let dir = temp_store_dir("warmstart");
    let svc = open_service(&dir);
    let cold_queries = run_workload(&svc, &instances);
    let cold_stats = svc.stats();
    assert!(cold_stats.misses >= 1, "cold run must solve");
    svc.close().expect("clean close flushes the WAL");

    // Restarted life: same directory, fresh process image.
    let svc = open_service(&dir);
    let store_regions = svc.store().expect("store attached").len();
    assert!(store_regions >= 1, "regions recovered from the WAL");
    let warm_queries = run_workload(&svc, &instances);
    let warm_stats = svc.stats();
    println!(
        "cold start : {cold_queries} queries, {} solves",
        cold_stats.misses
    );
    println!(
        "warm start : {warm_queries} queries, {} solves, {} store hits ({} regions recovered)",
        warm_stats.misses, warm_stats.store_hits, store_regions
    );
    println!(
        "query reduction {:.1}×",
        cold_queries as f64 / warm_queries as f64
    );
    assert_eq!(
        warm_stats.misses, 0,
        "a restarted service must re-serve every stored region without solving"
    );
    assert!(
        cold_queries >= 5 * warm_queries,
        "restart must cut API queries ≥5×: {cold_queries} vs {warm_queries}"
    );
    svc.close().expect("clean close");
    std::fs::remove_dir_all(&dir).ok();

    let mut group = c.benchmark_group("store_warmstart");
    group.sample_size(10);
    group.bench_function("cold_100x5regions", |b| {
        b.iter(|| {
            let dir = temp_store_dir("cold_iter");
            let svc = open_service(&dir);
            let q = run_workload(&svc, &instances);
            drop(svc);
            std::fs::remove_dir_all(&dir).ok();
            q
        })
    });
    group.bench_function("warm_restart_100x5regions", |b| {
        // One cold life outside the timed loop fills the store…
        let dir = temp_store_dir("warm_iter");
        let svc = open_service(&dir);
        run_workload(&svc, &instances);
        svc.close().expect("clean close");
        // …then every timed pass is a full restart: open (replay the
        // WAL), serve the workload, close.
        b.iter(|| {
            let svc = open_service(&dir);
            let q = run_workload(&svc, &instances);
            assert_eq!(svc.stats().misses, 0);
            drop(svc);
            q
        });
        std::fs::remove_dir_all(&dir).ok();
    });
    group.finish();
}

criterion_group!(benches, bench_store_warmstart);
criterion_main!(benches);
