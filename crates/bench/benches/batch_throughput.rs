//! Batch-interpretation throughput: the Theorem-2 region cache versus
//! per-instance Algorithm 1 on a clustered workload.
//!
//! Workload: 100 instances drawn from the 5 most populous regions of the
//! trained PLNN panel (136 distinct regions in its test set) — the shape
//! real traffic has (many users, few hot regions). The printed accounting
//! must show the batch layer issuing at least 5× fewer prediction queries
//! than the per-instance loop; the criterion group then times both paths.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_api::CountingApi;
use openapi_bench::{banner, hot_region_workload, plnn_panel};
use openapi_core::batch::{BatchConfig, BatchInterpreter};
use openapi_core::OpenApiInterpreter;
use openapi_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKLOAD: usize = 100;
const MAX_REGIONS: usize = 5;
const CLASS: usize = 0;

fn per_instance_queries(instances: &[Vector]) -> u64 {
    let api = CountingApi::new(&plnn_panel().model);
    let interpreter = OpenApiInterpreter::default();
    let mut rng = StdRng::seed_from_u64(1);
    for x in instances {
        let _ = interpreter.interpret(&api, x, CLASS, &mut rng);
    }
    api.queries()
}

fn batched_queries(instances: &[Vector], oracle: bool) -> (u64, usize, usize) {
    let api = CountingApi::new(&plnn_panel().model);
    let mut batch = BatchInterpreter::new(BatchConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    let out = if oracle {
        batch.interpret_batch_oracle(&api, instances, CLASS, &mut rng)
    } else {
        batch.interpret_batch(&api, instances, CLASS, &mut rng)
    };
    (api.queries(), out.stats.hits, out.stats.regions)
}

fn bench_batch_throughput(c: &mut Criterion) {
    let instances = hot_region_workload(WORKLOAD, MAX_REGIONS);
    banner(
        "batch throughput",
        &format!("{WORKLOAD} instances from ≤{MAX_REGIONS} regions, d = 196"),
    );

    let solo = per_instance_queries(&instances);
    let (probed, hits, regions) = batched_queries(&instances, false);
    let (oracle, oracle_hits, _) = batched_queries(&instances, true);
    println!("per-instance OpenAPI : {solo} queries");
    println!("batched (black-box)  : {probed} queries ({hits} hits over {regions} regions)");
    println!("batched (oracle key) : {oracle} queries ({oracle_hits} hits)");
    println!(
        "query reduction      : {:.1}× (black-box), {:.1}× (oracle)",
        solo as f64 / probed as f64,
        solo as f64 / oracle as f64
    );
    assert!(
        probed * 5 <= solo,
        "batch layer must cut queries ≥5×: {probed} vs {solo}"
    );

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    group.bench_function("per_instance_100x5regions", |b| {
        b.iter(|| {
            let interpreter = OpenApiInterpreter::default();
            let mut rng = StdRng::seed_from_u64(1);
            instances
                .iter()
                .filter_map(|x| {
                    interpreter
                        .interpret(&plnn_panel().model, x, CLASS, &mut rng)
                        .ok()
                })
                .count()
        })
    });
    group.bench_function("batched_cold_100x5regions", |b| {
        b.iter(|| {
            let mut batch = BatchInterpreter::new(BatchConfig::default());
            let mut rng = StdRng::seed_from_u64(1);
            batch
                .interpret_batch(&plnn_panel().model, &instances, CLASS, &mut rng)
                .stats
        })
    });
    group.bench_function("batched_warm_100x5regions", |b| {
        let mut batch = BatchInterpreter::new(BatchConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let _ = batch.interpret_batch(&plnn_panel().model, &instances, CLASS, &mut rng);
        b.iter(|| {
            batch
                .interpret_batch(&plnn_panel().model, &instances, CLASS, &mut rng)
                .stats
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
