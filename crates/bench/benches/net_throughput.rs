//! Wire-tier throughput: N TCP clients against one `openapi_net::Server`.
//!
//! Workload: 4 client connections, each driving 400 warm requests over 8
//! hot instances of a two-region PLM (d = 8) — steady-state serving, where
//! every request is one membership probe against the shared cache. Two
//! hard claims are asserted before the criterion timings:
//!
//! 1. **The hot path stays cache-bound, not syscall-bound.** During the
//!    timed warm phase the server performs *zero* Algorithm-1 solves and
//!    exactly one prediction query per request (the membership probe), and
//!    every response is a `CacheHit` — the wire adds transport, never
//!    extra model work. The per-request cost is the probe + one loopback
//!    round trip.
//! 2. **Concurrent connections do not collapse.** 4 connections must
//!    sustain well over half of a single connection's request rate — the
//!    threaded acceptor multiplexes sockets rather than serializing (or
//!    deadlocking) behind one. On a multicore box the fleet overtakes the
//!    single connection outright; on one core the gain is bounded by the
//!    overlap of syscall waits, so the assertion is a collapse guard, not
//!    a speedup claim (the printed scaling figure tells the real story).
//! 3. **Tracing costs under 5%.** The same binary runs the warm fleet with
//!    the `openapi-trace` runtime kill switch off and on, as back-to-back
//!    A/B rounds whose median is scored (so background-load drift cancels
//!    within a round and outlier rounds are rejected); enabled throughput
//!    must stay within 5% of disabled. The measured figures land in
//!    `BENCH_trace.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_api::{CountingApi, TwoRegionPlm};
use openapi_bench::banner;
use openapi_linalg::Vector;
use openapi_net::{Client, Server, ServerConfig};
use openapi_serve::{InterpretationService, ServeOutcome, ServiceConfig};
use std::time::Instant;

const DIM: usize = TwoRegionPlm::REFERENCE_DIM;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 400;
/// Requests per arm-trial of the tracing-overhead A/B (claim 3): the
/// whole fleet workload driven down one connection.
const OVERHEAD_TRIAL: usize = 3 * CLIENTS * REQUESTS_PER_CLIENT;

/// The hidden model: the canonical two-region d = 8, C = 3 fixture the
/// facade's integration tests exercise too.
fn two_region_plm() -> TwoRegionPlm {
    TwoRegionPlm::reference()
}

/// Eight hot instances alternating between the two regions — the same
/// canonical generator the facade's wire tests drive.
fn hot_instances() -> Vec<Vector> {
    (0..8).map(TwoRegionPlm::reference_instance).collect()
}

fn spawn_server() -> Server<CountingApi<TwoRegionPlm>> {
    let service = InterpretationService::new(
        CountingApi::new(two_region_plm()),
        ServiceConfig {
            workers: CLIENTS,
            seed: 1,
            ..ServiceConfig::default()
        },
    );
    Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("ephemeral bind")
}

/// Drives `threads` connections × `per_conn` warm requests; returns
/// requests per second (every response asserted to be a cache hit).
fn warm_run(server: &Server<CountingApi<TwoRegionPlm>>, threads: usize, per_conn: usize) -> f64 {
    let addr = server.local_addr();
    let instances = hot_instances();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let instances = &instances;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("handshake");
                for k in 0..per_conn {
                    let x = &instances[(k * (t + 1)) % instances.len()];
                    let served = client.interpret(x, 0).expect("warm serve");
                    assert_eq!(
                        served.outcome,
                        ServeOutcome::CacheHit,
                        "steady state must serve from cache"
                    );
                }
            });
        }
    });
    (threads * per_conn) as f64 / start.elapsed().as_secs_f64()
}

/// Claim 3: tracing overhead, measured A/B in one binary. Returns
/// `(disabled_rps, enabled_rps)` from the median of 8 interleaved warm A/B
/// fleet runs, with the kill switch restored to on afterwards.
fn measure_trace_overhead(server: &Server<CountingApi<TwoRegionPlm>>) -> (f64, f64) {
    // Interleaved A/B, scored per round: the two arms of one round run
    // back to back, so their ratio cancels whatever background load the
    // machine had that instant; the median round then rejects the rounds
    // a scheduler burst skewed entirely. (Best-of per arm is *not* noise
    // robust here: it compares two different rounds' conditions.) One
    // connection, not the fleet: the per-request tracing work is the
    // same, but a single pipeline's rate doesn't depend on how the
    // scheduler happens to interleave four client threads on a small
    // (even single-core) box — fleet trials measure the scheduler, not
    // the tracer.
    let mut rounds: Vec<(f64, f64)> = Vec::new();
    for _round in 0..8 {
        let mut pair = [0f64; 2];
        for (arm, on) in [(0usize, false), (1usize, true)] {
            openapi_trace::set_runtime_enabled(on);
            pair[arm] = warm_run(server, 1, OVERHEAD_TRIAL);
        }
        rounds.push((pair[0], pair[1]));
    }
    openapi_trace::set_runtime_enabled(true);
    // float: total_cmp on finite throughput ratios — a deliberate sort key.
    rounds.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    rounds[rounds.len() / 2]
}

/// Records the overhead measurement as `BENCH_trace.json` at the
/// workspace root (hand-rolled JSON: the bench has no serializer dep).
fn write_bench_trace(disabled_rps: f64, enabled_rps: f64, overhead: f64) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root");
    let json = format!(
        "{{\n  \"bench\": \"net_throughput trace overhead\",\n  \
         \"workload\": \"1 conn x {OVERHEAD_TRIAL} warm requests per trial, median of 8 interleaved A/B rounds\",\n  \
         \"disabled_rps\": {disabled_rps:.0},\n  \
         \"enabled_rps\": {enabled_rps:.0},\n  \
         \"overhead_fraction\": {overhead:.4},\n  \
         \"budget_fraction\": 0.05\n}}\n"
    );
    if let Err(err) = std::fs::write(root.join("BENCH_trace.json"), json) {
        eprintln!("could not write BENCH_trace.json: {err}");
    }
}

fn bench_net_throughput(c: &mut Criterion) {
    banner(
        "net throughput",
        &format!(
            "{CLIENTS} TCP clients × {REQUESTS_PER_CLIENT} warm requests, two-region PLM, d = {DIM}"
        ),
    );
    let server = spawn_server();

    // Warm the cache: one sequential pass over the hot set pays the only
    // Algorithm-1 solves of the whole bench.
    let mut warmup = Client::connect(server.local_addr()).expect("handshake");
    for x in &hot_instances() {
        warmup.interpret(x, 0).expect("warmup serves");
    }
    let cold = server.service().stats();
    assert_eq!(cold.misses, 2, "two regions, two solves");

    // Claim 2: concurrent connections hold their rate.
    let single_rps = warm_run(&server, 1, CLIENTS * REQUESTS_PER_CLIENT / 2);
    let fleet_rps = warm_run(&server, CLIENTS, REQUESTS_PER_CLIENT);

    // Claim 1: the timed traffic did zero solves and exactly one query
    // (the membership probe) per request — cache-bound, the wire added no
    // model work.
    let warm = server.service().stats();
    let requests = warm.requests - cold.requests;
    assert_eq!(warm.misses, cold.misses, "warm phase must not solve");
    assert_eq!(
        warm.queries - cold.queries,
        requests,
        "exactly one probe per warm request"
    );
    assert_eq!(warm.failures, 0);

    println!("1 connection  : {single_rps:>8.0} req/s");
    println!("{CLIENTS} connections : {fleet_rps:>8.0} req/s");
    println!(
        "scaling {:.2}×; {} warm requests, {} queries, 0 solves",
        fleet_rps / single_rps,
        requests,
        warm.queries - cold.queries
    );
    assert!(
        fleet_rps > 0.6 * single_rps,
        "{CLIENTS} connections must not collapse against one: \
         {fleet_rps:.0} vs {single_rps:.0} req/s"
    );

    // Claim 3: the trace tier must cost under 5% of warm throughput.
    let (disabled_rps, enabled_rps) = measure_trace_overhead(&server);
    let overhead = (disabled_rps - enabled_rps) / disabled_rps;
    println!(
        "trace off     : {disabled_rps:>8.0} req/s\n\
         trace on      : {enabled_rps:>8.0} req/s\n\
         overhead {:.2}% (budget 5%)",
        overhead * 100.0
    );
    write_bench_trace(disabled_rps, enabled_rps, overhead);
    assert!(
        overhead < 0.05,
        "tracing overhead must stay under 5%: \
         {enabled_rps:.0} req/s enabled vs {disabled_rps:.0} req/s disabled"
    );

    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(10);
    group.bench_function("warm_interpret_1conn", |b| {
        let mut client = Client::connect(server.local_addr()).expect("handshake");
        let x = &hot_instances()[0];
        b.iter(|| client.interpret(x, 0).expect("warm serve").queries)
    });
    group.bench_function("warm_interpret_4conn_x400", |b| {
        b.iter(|| warm_run(&server, CLIENTS, REQUESTS_PER_CLIENT))
    });
    group.bench_function("ping_rtt", |b| {
        let mut client = Client::connect(server.local_addr()).expect("handshake");
        b.iter(|| client.ping().expect("pong"))
    });
    group.finish();
    server.close().expect("clean close");
}

criterion_group!(benches, bench_net_throughput);
criterion_main!(benches);
