//! Wire-tier throughput: N TCP clients against one `openapi_net::Server`.
//!
//! Workload: 4 client connections, each driving 400 warm requests over 8
//! hot instances of a two-region PLM (d = 8) — steady-state serving, where
//! every request is one membership probe against the shared cache. Two
//! hard claims are asserted before the criterion timings:
//!
//! 1. **The hot path stays cache-bound, not syscall-bound.** During the
//!    timed warm phase the server performs *zero* Algorithm-1 solves and
//!    exactly one prediction query per request (the membership probe), and
//!    every response is a `CacheHit` — the wire adds transport, never
//!    extra model work. The per-request cost is the probe + one loopback
//!    round trip.
//! 2. **Concurrent connections do not collapse.** 4 connections must
//!    sustain well over half of a single connection's request rate — the
//!    threaded acceptor multiplexes sockets rather than serializing (or
//!    deadlocking) behind one. On a multicore box the fleet overtakes the
//!    single connection outright; on one core the gain is bounded by the
//!    overlap of syscall waits, so the assertion is a collapse guard, not
//!    a speedup claim (the printed scaling figure tells the real story).

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_api::{CountingApi, TwoRegionPlm};
use openapi_bench::banner;
use openapi_linalg::Vector;
use openapi_net::{Client, Server, ServerConfig};
use openapi_serve::{InterpretationService, ServeOutcome, ServiceConfig};
use std::time::Instant;

const DIM: usize = TwoRegionPlm::REFERENCE_DIM;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 400;

/// The hidden model: the canonical two-region d = 8, C = 3 fixture the
/// facade's integration tests exercise too.
fn two_region_plm() -> TwoRegionPlm {
    TwoRegionPlm::reference()
}

/// Eight hot instances alternating between the two regions — the same
/// canonical generator the facade's wire tests drive.
fn hot_instances() -> Vec<Vector> {
    (0..8).map(TwoRegionPlm::reference_instance).collect()
}

fn spawn_server() -> Server<CountingApi<TwoRegionPlm>> {
    let service = InterpretationService::new(
        CountingApi::new(two_region_plm()),
        ServiceConfig {
            workers: CLIENTS,
            seed: 1,
            ..ServiceConfig::default()
        },
    );
    Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("ephemeral bind")
}

/// Drives `threads` connections × `per_conn` warm requests; returns
/// requests per second (every response asserted to be a cache hit).
fn warm_run(server: &Server<CountingApi<TwoRegionPlm>>, threads: usize, per_conn: usize) -> f64 {
    let addr = server.local_addr();
    let instances = hot_instances();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let instances = &instances;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("handshake");
                for k in 0..per_conn {
                    let x = &instances[(k * (t + 1)) % instances.len()];
                    let served = client.interpret(x, 0).expect("warm serve");
                    assert_eq!(
                        served.outcome,
                        ServeOutcome::CacheHit,
                        "steady state must serve from cache"
                    );
                }
            });
        }
    });
    (threads * per_conn) as f64 / start.elapsed().as_secs_f64()
}

fn bench_net_throughput(c: &mut Criterion) {
    banner(
        "net throughput",
        &format!(
            "{CLIENTS} TCP clients × {REQUESTS_PER_CLIENT} warm requests, two-region PLM, d = {DIM}"
        ),
    );
    let server = spawn_server();

    // Warm the cache: one sequential pass over the hot set pays the only
    // Algorithm-1 solves of the whole bench.
    let mut warmup = Client::connect(server.local_addr()).expect("handshake");
    for x in &hot_instances() {
        warmup.interpret(x, 0).expect("warmup serves");
    }
    let cold = server.service().stats();
    assert_eq!(cold.misses, 2, "two regions, two solves");

    // Claim 2: concurrent connections hold their rate.
    let single_rps = warm_run(&server, 1, CLIENTS * REQUESTS_PER_CLIENT / 2);
    let fleet_rps = warm_run(&server, CLIENTS, REQUESTS_PER_CLIENT);

    // Claim 1: the timed traffic did zero solves and exactly one query
    // (the membership probe) per request — cache-bound, the wire added no
    // model work.
    let warm = server.service().stats();
    let requests = warm.requests - cold.requests;
    assert_eq!(warm.misses, cold.misses, "warm phase must not solve");
    assert_eq!(
        warm.queries - cold.queries,
        requests,
        "exactly one probe per warm request"
    );
    assert_eq!(warm.failures, 0);

    println!("1 connection  : {single_rps:>8.0} req/s");
    println!("{CLIENTS} connections : {fleet_rps:>8.0} req/s");
    println!(
        "scaling {:.2}×; {} warm requests, {} queries, 0 solves",
        fleet_rps / single_rps,
        requests,
        warm.queries - cold.queries
    );
    assert!(
        fleet_rps > 0.6 * single_rps,
        "{CLIENTS} connections must not collapse against one: \
         {fleet_rps:.0} vs {single_rps:.0} req/s"
    );

    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(10);
    group.bench_function("warm_interpret_1conn", |b| {
        let mut client = Client::connect(server.local_addr()).expect("handshake");
        let x = &hot_instances()[0];
        b.iter(|| client.interpret(x, 0).expect("warm serve").queries)
    });
    group.bench_function("warm_interpret_4conn_x400", |b| {
        b.iter(|| warm_run(&server, CLIENTS, REQUESTS_PER_CLIENT))
    });
    group.bench_function("ping_rtt", |b| {
        let mut client = Client::connect(server.local_addr()).expect("handshake");
        b.iter(|| client.ping().expect("pong"))
    });
    group.finish();
    server.close().expect("clean close");
}

criterion_group!(benches, bench_net_throughput);
criterion_main!(benches);
