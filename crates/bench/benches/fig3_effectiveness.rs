//! Figure 3 bench: attribution + feature-alteration (CPP / NLCI) kernels,
//! with the regenerated per-method checkpoint row.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_bench::{banner, plnn_panel};
use openapi_core::Method;
use openapi_metrics::effectiveness::{aggregate_curves, alteration_curve, EffectivenessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig3(c: &mut Criterion) {
    let panel = plnn_panel();
    let eff = EffectivenessConfig {
        max_features: 40,
        ..Default::default()
    };

    banner(
        "Figure 3",
        "avg CPP at k = 40 altered features, 3 instances",
    );
    let mut rng = StdRng::seed_from_u64(1);
    for method in Method::effectiveness_lineup() {
        let mut curves = Vec::new();
        for i in 0..3 {
            let x0 = panel.test.instance(i);
            let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
            if let Ok(attr) = method.attribution(&panel.model, x0, class, &mut rng) {
                curves.push(alteration_curve(&panel.model, x0, class, &attr, &eff));
            }
        }
        if !curves.is_empty() {
            let (cpp, nlci) = aggregate_curves(&curves);
            println!(
                "{:<12} CPP@40 = {:.3}, NLCI@40 = {}/{}",
                method.name(),
                cpp.last().unwrap(),
                nlci.last().unwrap(),
                curves.len()
            );
        }
    }

    let x0 = panel.test.instance(0).clone();
    let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
    let mut rng = StdRng::seed_from_u64(2);
    let attribution = Method::default()
        .attribution(&panel.model, &x0, class, &mut rng)
        .expect("OpenAPI attribution");

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("alteration_curve_40_features", |b| {
        b.iter(|| alteration_curve(&panel.model, &x0, class, &attribution, &eff))
    });
    group.bench_function("openapi_attribution_196d", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| Method::default().attribution(&panel.model, &x0, class, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
