//! Figure 5 bench: method sample-set generation and region-membership
//! checking, with the regenerated avg-RD column.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_api::GroundTruthOracle;
use openapi_bench::{banner, plnn_panel};
use openapi_core::Method;
use openapi_metrics::region_diff::region_difference;
use openapi_metrics::samples::method_samples;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig5(c: &mut Criterion) {
    let panel = plnn_panel();

    banner("Figure 5", "average Region Difference over 4 instances");
    let mut rng = StdRng::seed_from_u64(6);
    for method in Method::quality_lineup() {
        let mut total = 0.0;
        let mut n = 0;
        for i in 0..4 {
            let x0 = panel.test.instance(i);
            let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
            if let Some(samples) = method_samples(&method, &panel.model, x0, class, &mut rng) {
                total += region_difference(&panel.model, x0, &samples);
                n += 1;
            }
        }
        if n > 0 {
            println!("{:<12} avg RD = {:.3}", method.name(), total / n as f64);
        }
    }

    let x0 = panel.test.instance(0).clone();
    let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
    let mut rng = StdRng::seed_from_u64(7);
    let samples = method_samples(&Method::default(), &panel.model, &x0, class, &mut rng)
        .expect("OpenAPI samples");

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("region_id_one_instance", |b| {
        b.iter(|| panel.model.region_id(x0.as_slice()))
    });
    group.bench_function("region_difference_197_samples", |b| {
        b.iter(|| region_difference(&panel.model, &x0, &samples))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
