//! Blocked vs scalar probe kernels: the boundary-evaluation +
//! membership-verdict passes the cache and serving tiers run on the warm
//! path, measured at bench scale.
//!
//! Fixture: `regions` single-contrast regions of dimension `d`, packed
//! row-major exactly as `RegionCache` packs them ([`RowMatrix`], one
//! [`RowGroup`] per region). Every config first proves the backends
//! **bit-identical** (same `y` bits, same verdicts — the kernel-layer
//! contract), then times both.
//!
//! Two passes are measured:
//!
//! * **single-probe** — one `boundary_eval` + verdicts per probe. Both
//!   backends stream the same matrix once, so the blocked win here is
//!   instruction-level parallelism only (~2× where the pack fits in
//!   cache, fading to ~1× once the pass goes memory-bound).
//! * **batched** — [`PROBE_LANES`] probes through `boundary_eval_batch`.
//!   The blocked backend streams each matrix row once *per probe block*
//!   instead of once per probe and vectorizes across probes, which is
//!   where the warm wire-batch path actually runs; at d = 196 with
//!   ≥ 1000 regions it must beat the scalar reference ≥ 3×.
//!
//! Measured numbers are recorded in `BENCH_kernels.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_bench::banner;
use openapi_linalg::kernel::{
    Backend, BlockedBackend, RowGroup, RowMatrix, ScalarBackend, PROBE_LANES,
};
use std::time::{Duration, Instant};

const DIMS: [usize; 2] = [8, 196];
const REGIONS: [usize; 3] = [100, 1000, 5000];
const RTOL: f64 = 1e-6;

/// Deterministic xorshift values in `[-0.5, 0.5)` — no rng dependency.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

struct Fixture {
    w: RowMatrix,
    bias: Vec<f64>,
    groups: Vec<RowGroup>,
    /// One probe per batch lane; `xs[0]` doubles as the single-probe probe.
    xs: Vec<Vec<f64>>,
    /// Per-probe targets, parallel to `xs`.
    targets: Vec<Vec<f64>>,
}

/// Builds a packed scan of `regions` single-contrast regions plus
/// [`PROBE_LANES`] probes: per probe, every 7th target is the exact
/// boundary value (a membership hit), the rest miss.
fn fixture(d: usize, regions: usize) -> Fixture {
    let mut gen = Gen(0x9e37_79b9_7f4a_7c15 ^ (d as u64) << 32 ^ regions as u64);
    let mut w = RowMatrix::new(d);
    let mut bias = Vec::with_capacity(regions);
    let mut groups = Vec::with_capacity(regions);
    for r in 0..regions {
        let row: Vec<f64> = (0..d).map(|_| gen.next()).collect();
        w.push_row(&row);
        bias.push(gen.next());
        groups.push(RowGroup { start: r, len: 1 });
    }
    let xs: Vec<Vec<f64>> = (0..PROBE_LANES)
        .map(|_| (0..d).map(|_| gen.next()).collect())
        .collect();
    let targets = xs
        .iter()
        .map(|x| {
            let mut y = Vec::new();
            ScalarBackend.boundary_eval(&w, &bias, x, 0..regions, &mut y);
            y.iter()
                .enumerate()
                .map(|(i, v)| if i % 7 == 0 { *v } else { v + 0.5 })
                .collect()
        })
        .collect();
    Fixture {
        w,
        bias,
        groups,
        xs,
        targets,
    }
}

/// One single-probe warm-path pass: boundary evaluation, then verdicts.
fn pass(backend: &dyn Backend, f: &Fixture, y: &mut Vec<f64>, verdicts: &mut Vec<bool>) {
    backend.boundary_eval(&f.w, &f.bias, &f.xs[0], 0..f.w.rows(), y);
    backend.membership_verdicts(y, &f.targets[0], RTOL, &f.groups, verdicts);
}

/// One batched warm-path pass: a multi-probe evaluation of the whole
/// pack, then per-probe verdicts off the shared probe-major output.
fn batch_pass(backend: &dyn Backend, f: &Fixture, y: &mut Vec<f64>, verdicts: &mut Vec<bool>) {
    let xs: Vec<&[f64]> = f.xs.iter().map(Vec::as_slice).collect();
    let rows = f.w.rows();
    backend.boundary_eval_batch(&f.w, &f.bias, &xs, 0..rows, y);
    verdicts.clear();
    let mut per_probe = Vec::new();
    for (p, targets) in f.targets.iter().enumerate() {
        backend.membership_verdicts(
            &y[p * rows..(p + 1) * rows],
            targets,
            RTOL,
            &f.groups,
            &mut per_probe,
        );
        verdicts.extend_from_slice(&per_probe);
    }
}

/// Best-of-5 timing of `reps` calls of `pass_fn` (best-of damps
/// scheduler noise).
fn time_passes(
    pass_fn: impl Fn(&dyn Backend, &Fixture, &mut Vec<f64>, &mut Vec<bool>),
    backend: &dyn Backend,
    f: &Fixture,
    reps: usize,
) -> Duration {
    let mut y = Vec::new();
    let mut verdicts = Vec::new();
    pass_fn(backend, f, &mut y, &mut verdicts); // warm the caches
    (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                pass_fn(backend, f, &mut y, &mut verdicts);
                std::hint::black_box((&y, &verdicts));
            }
            start.elapsed()
        })
        .min()
        .expect("five samples")
}

/// Asserts the two backends produced the same bits and that the planted
/// hits (every 7th target, per probe) all landed.
fn bit_identity_gate(
    (ys, vs): (&[f64], &[bool]),
    (yb, vb): (&[f64], &[bool]),
    regions: usize,
    probes: usize,
) {
    assert_eq!(ys.len(), yb.len());
    for (a, b) in ys.iter().zip(yb) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "boundary values must match bitwise"
        );
    }
    assert_eq!(vs, vb, "verdicts must match exactly");
    assert_eq!(
        vs.iter().filter(|v| **v).count(),
        probes * regions.div_ceil(7),
        "every 7th target is a planted hit"
    );
}

fn bench_probe_kernels(c: &mut Criterion) {
    banner(
        "probe kernels",
        "blocked vs scalar boundary_eval(+_batch) + membership_verdicts",
    );
    let mut group = c.benchmark_group("probe_kernels");
    group.sample_size(10);

    for d in DIMS {
        for regions in REGIONS {
            let f = fixture(d, regions);

            // Bit-identity gates before any timing: the backends must
            // agree to the bit, or the speedups are meaningless.
            let (mut ys, mut yb) = (Vec::new(), Vec::new());
            let (mut vs, mut vb) = (Vec::new(), Vec::new());
            pass(&ScalarBackend, &f, &mut ys, &mut vs);
            pass(&BlockedBackend, &f, &mut yb, &mut vb);
            bit_identity_gate((&ys, &vs), (&yb, &vb), regions, 1);
            batch_pass(&ScalarBackend, &f, &mut ys, &mut vs);
            batch_pass(&BlockedBackend, &f, &mut yb, &mut vb);
            bit_identity_gate((&ys, &vs), (&yb, &vb), regions, PROBE_LANES);

            let reps = (4_000_000 / (d * regions)).max(1);
            let scalar = time_passes(pass, &ScalarBackend, &f, reps);
            let blocked = time_passes(pass, &BlockedBackend, &f, reps);
            let single = scalar.as_secs_f64() / blocked.as_secs_f64();

            let breps = (reps / PROBE_LANES).max(3);
            let bscalar = time_passes(batch_pass, &ScalarBackend, &f, breps);
            let bblocked = time_passes(batch_pass, &BlockedBackend, &f, breps);
            let batched = bscalar.as_secs_f64() / bblocked.as_secs_f64();

            println!(
                "d={d:>3} regions={regions:>4}: single {:>9.1?} vs {:>9.1?} ({single:.2}×)  \
                 batch×{PROBE_LANES} {:>9.1?} vs {:>9.1?} ({batched:.2}×)",
                scalar / reps as u32,
                blocked / reps as u32,
                bscalar / breps as u32,
                bblocked / breps as u32,
            );
            if d == 196 && regions >= 1000 {
                // The headline claim: at serving scale the batched blocked
                // pass beats the scalar reference ≥ 3× (≥ 2.5× at the
                // largest pack, where even the batched pass spills out of
                // L2 and goes partly memory-bound). The single-probe pass
                // is ILP-only, so it only has to win, not win 3×.
                let floor = if regions > 1000 { 2.5 } else { 3.0 };
                assert!(
                    batched >= floor,
                    "batched blocked must beat scalar ≥{floor}× at d={d}, {regions} regions (got {batched:.2}×)"
                );
                assert!(
                    single > 1.0,
                    "single-probe blocked must beat scalar at d={d}, {regions} regions (got {single:.2}×)"
                );
            }

            group.bench_function(format!("scalar_d{d}_r{regions}"), |b| {
                let (mut y, mut v) = (Vec::new(), Vec::new());
                b.iter(|| {
                    pass(&ScalarBackend, &f, &mut y, &mut v);
                    std::hint::black_box(&v).iter().filter(|h| **h).count()
                })
            });
            group.bench_function(format!("blocked_d{d}_r{regions}"), |b| {
                let (mut y, mut v) = (Vec::new(), Vec::new());
                b.iter(|| {
                    pass(&BlockedBackend, &f, &mut y, &mut v);
                    std::hint::black_box(&v).iter().filter(|h| **h).count()
                })
            });
            group.bench_function(format!("batch_scalar_d{d}_r{regions}"), |b| {
                let (mut y, mut v) = (Vec::new(), Vec::new());
                b.iter(|| {
                    batch_pass(&ScalarBackend, &f, &mut y, &mut v);
                    std::hint::black_box(&v).iter().filter(|h| **h).count()
                })
            });
            group.bench_function(format!("batch_blocked_d{d}_r{regions}"), |b| {
                let (mut y, mut v) = (Vec::new(), Vec::new());
                b.iter(|| {
                    batch_pass(&BlockedBackend, &f, &mut y, &mut v);
                    std::hint::black_box(&v).iter().filter(|h| **h).count()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_probe_kernels);
criterion_main!(benches);
