//! Concurrent interpretation-service throughput versus independent
//! per-client batch interpreters.
//!
//! Workload: 8 client threads, each submitting the same 100 instances
//! drawn from the 5 most populous regions of the trained PLNN panel — the
//! shape real traffic has (many users, few hot regions; 800 requests
//! total). Two hard claims are asserted before the criterion timings:
//!
//! 1. **Strictly fewer API queries.** Eight clients sharing one
//!    `InterpretationService` (shared sharded cache + request coalescing)
//!    must issue strictly fewer total prediction queries than eight
//!    independent `BatchInterpreter`s running the same workload — the
//!    independents each re-solve every region; the service solves each
//!    region once for the whole fleet.
//! 2. **≥ 3× concurrent throughput.** Requests served per second by the
//!    service (800 requests, 8 client threads) must be at least 3× the
//!    single-threaded `batch_throughput` cold path (100 instances, one
//!    thread) on the same instance set.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_api::{CountingApi, PredictionApi};
use openapi_bench::{banner, hot_region_workload, plnn_panel};
use openapi_core::batch::{BatchConfig, BatchInterpreter};
use openapi_linalg::Vector;
use openapi_serve::{InterpretationService, ServiceConfig};
use openapi_sync::atomic::{AtomicU64, Ordering};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const WORKLOAD: usize = 100;
const MAX_REGIONS: usize = 5;
const CLASS: usize = 0;
const CLIENTS: usize = 8;

type PanelApi = CountingApi<&'static openapi_eval::panel::PanelModel>;

fn make_service() -> InterpretationService<PanelApi> {
    InterpretationService::new(
        CountingApi::new(&plnn_panel().model),
        ServiceConfig {
            workers: CLIENTS,
            seed: 1,
            ..ServiceConfig::default()
        },
    )
}

/// Eight independent batch interpreters, one per client: total queries.
fn independent_queries(instances: &[Vector]) -> u64 {
    let api = CountingApi::new(&plnn_panel().model);
    for client in 0..CLIENTS {
        let mut batch = BatchInterpreter::new(BatchConfig::default());
        let mut rng = StdRng::seed_from_u64(client as u64 + 1);
        let out = batch.interpret_batch(&api, instances, CLASS, &mut rng);
        assert_eq!(out.stats.failures, 0);
    }
    api.queries()
}

/// One shared service, `CLIENTS` closed-loop client threads each
/// submitting every instance; returns (queries, wall-clock seconds).
fn service_run(instances: &[Vector]) -> (u64, f64) {
    let service = make_service();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let service = &service;
            scope.spawn(move || {
                let tickets: Vec<_> = instances
                    .iter()
                    .map(|x| service.submit_instance(x.clone(), CLASS))
                    .collect();
                for t in tickets {
                    t.wait().expect("interior instances interpret");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (service.api().queries(), elapsed)
}

/// Single-thread cold batch pass (the `batch_throughput` baseline):
/// wall-clock seconds for 100 instances.
fn batch_cold_run(instances: &[Vector]) -> f64 {
    let mut batch = BatchInterpreter::new(BatchConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    let start = Instant::now();
    let out = batch.interpret_batch(&plnn_panel().model, instances, CLASS, &mut rng);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(out.stats.failures, 0);
    elapsed
}

/// A latency-bearing API wrapper tracking how many predictions are in
/// flight simultaneously — the direct evidence that distinct-region cold
/// solves of one class run in parallel rather than serializing.
struct ConcurrencyProbe<M> {
    inner: M,
    round_trip: Duration,
    in_flight: AtomicU64,
    peak: AtomicU64,
    calls: AtomicU64,
}

impl<M: PredictionApi> ConcurrencyProbe<M> {
    fn new(inner: M, round_trip: Duration) -> Self {
        ConcurrencyProbe {
            inner,
            round_trip,
            in_flight: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        }
    }
}

impl<M: PredictionApi> PredictionApi for ConcurrencyProbe<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        // Gauges for a concurrency probe: the RMWs are atomic regardless,
        // the final reads happen after every ticket resolved (reply-channel
        // edges), and a stale `peak` only under-reports parallelism.
        // ordering: Relaxed — on all three updates below.
        self.calls.fetch_add(1, Ordering::Relaxed);
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        std::thread::sleep(self.round_trip);
        let out = self.inner.predict(x);
        // ordering: Relaxed — gauge decrement, as above.
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        out
    }
}

/// ROADMAP item: distinct-region cold misses of one class must no longer
/// serialize behind a single coalescing leader. Five distinct-region
/// instances of one class hit a fresh service over a 500 µs round-trip
/// API; with the default leader pool (4 per class) the solves overlap, so
/// (a) at least two predictions are observed in flight at once and (b)
/// the wall clock lands well under the fully-serialized floor of
/// `calls × round_trip`.
fn assert_cold_misses_parallelize(instances: &[Vector]) {
    let round_trip = Duration::from_micros(500);
    let distinct: Vec<Vector> = instances[..MAX_REGIONS].to_vec();
    let service = InterpretationService::new(
        ConcurrencyProbe::new(&plnn_panel().model, round_trip),
        ServiceConfig {
            workers: MAX_REGIONS,
            seed: 1,
            ..ServiceConfig::default()
        },
    );
    let start = Instant::now();
    let tickets: Vec<_> = distinct
        .iter()
        .map(|x| service.submit_instance(x.clone(), CLASS))
        .collect();
    for t in tickets {
        t.wait().expect("interior instances interpret");
    }
    let elapsed = start.elapsed();
    let api = service.api();
    // ordering: Relaxed — every ticket resolved above; the reply-channel
    // receives ordered all probe RMWs before these loads.
    let calls = api.calls.load(Ordering::Relaxed);
    let peak = api.peak.load(Ordering::Relaxed);
    let serial_floor = round_trip * calls as u32;
    println!(
        "cold-start parallelism: {} distinct regions, {} calls, peak {} in flight, \
         {elapsed:.2?} vs {serial_floor:.2?} serialized",
        MAX_REGIONS, calls, peak
    );
    assert!(
        peak >= 2,
        "distinct-region cold solves of one class must overlap (peak {peak})"
    );
    assert!(
        elapsed < serial_floor.mul_f64(0.75),
        "cold start must beat the serialized floor: {elapsed:.2?} vs {serial_floor:.2?}"
    );
    assert_eq!(service.stats().failures, 0);
}

fn bench_service_throughput(c: &mut Criterion) {
    let instances = hot_region_workload(WORKLOAD, MAX_REGIONS);
    banner(
        "service throughput",
        &format!("{CLIENTS} clients × {WORKLOAD} instances over ≤{MAX_REGIONS} regions, d = 196"),
    );
    assert_cold_misses_parallelize(&instances);

    let independent = independent_queries(&instances);
    let (shared, service_secs) = service_run(&instances);
    let batch_secs = batch_cold_run(&instances);
    let service_rps = (CLIENTS * WORKLOAD) as f64 / service_secs;
    let batch_rps = WORKLOAD as f64 / batch_secs;
    println!("{CLIENTS} independent BatchInterpreters : {independent} queries");
    println!(
        "1 shared InterpretationService   : {shared} queries, {:.0} req/s ({} requests in {service_secs:.3}s)",
        service_rps,
        CLIENTS * WORKLOAD
    );
    println!(
        "single-thread batch cold         : {:.0} req/s ({WORKLOAD} instances in {batch_secs:.3}s)",
        batch_rps
    );
    println!(
        "query reduction {:.1}×, throughput {:.1}×",
        independent as f64 / shared as f64,
        service_rps / batch_rps
    );
    assert!(
        shared < independent,
        "coalescing + shared cache must cut total queries: {shared} vs {independent}"
    );
    assert!(
        service_rps >= 3.0 * batch_rps,
        "concurrent throughput must be ≥3× the single-thread cold path: \
         {service_rps:.0} vs {batch_rps:.0} req/s"
    );

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.bench_function("independent_8x100x5regions", |b| {
        b.iter(|| independent_queries(&instances))
    });
    group.bench_function("service_cold_8x100x5regions", |b| {
        b.iter(|| service_run(&instances))
    });
    group.bench_function("service_warm_8x100x5regions", |b| {
        let service = make_service();
        // Warm the cache once; timed passes serve everything as hits.
        for x in &instances {
            service
                .submit_instance(x.clone(), CLASS)
                .wait()
                .expect("warmup");
        }
        b.iter(|| {
            let tickets: Vec<_> = instances
                .iter()
                .map(|x| service.submit_instance(x.clone(), CLASS))
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("warm hits").queries)
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
