//! Table I bench: the model-training workloads behind the accuracy table,
//! plus a printout of the regenerated table at bench scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use openapi_bench::{banner, bench_config};
use openapi_data::downsample;
use openapi_data::synth::{SynthConfig, SynthStyle};
use openapi_lmt::{Lmt, LmtConfig, LogisticConfig};
use openapi_nn::{train, Activation, Optimizer, Plnn, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table1(c: &mut Criterion) {
    let cfg = bench_config();
    // Regenerate the table once so the bench output carries the artifact.
    banner("Table I", "train/test accuracy per model family");
    for style in [SynthStyle::FmnistLike, SynthStyle::MnistLike] {
        let lmt = openapi_eval::panel::build_lmt_panel(&cfg, style);
        let plnn = openapi_eval::panel::build_plnn_panel(&cfg, style);
        println!(
            "LMT  {:<14} train {:.3} test {:.3}",
            style.name(),
            lmt.train_accuracy,
            lmt.test_accuracy
        );
        println!(
            "PLNN {:<14} train {:.3} test {:.3}",
            style.name(),
            plnn.train_accuracy,
            plnn.test_accuracy
        );
    }

    // Workload: a small shared dataset (14×14, 400 instances).
    let (train_raw, _) = SynthConfig::small(SynthStyle::MnistLike, 400, 10, 3).generate();
    let data = downsample(&train_raw, 2);

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("train_plnn_196d_400n", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| {
                let mut net = Plnn::mlp(&[196, 24, 10], Activation::ReLU, &mut rng);
                let cfg = TrainConfig {
                    epochs: 3,
                    batch_size: 32,
                    optimizer: Optimizer::adam(3e-3),
                    weight_decay: 0.0,
                };
                train(&mut net, &data, &cfg, &mut rng)
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("train_lmt_196d_400n", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(2),
            |mut rng| {
                let cfg = LmtConfig {
                    min_leaf_instances: 150,
                    logistic: LogisticConfig {
                        epochs: 4,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                Lmt::fit(&data, &cfg, &mut rng)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
