//! Figure 2 bench: the per-instance OpenAPI interpretation and the heatmap
//! averaging behind the case-study images.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_bench::{banner, lmt_panel};
use openapi_core::{OpenApiConfig, OpenApiInterpreter};
use openapi_linalg::Vector;
use openapi_metrics::heatmap::{mean_vector, signed_ascii};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig2(c: &mut Criterion) {
    let panel = lmt_panel();
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());

    // Regenerate one class's averaged decision features and show them.
    banner(
        "Figure 2",
        "class-average decision features (LMT, class 'Boot')",
    );
    let class = 9; // Boot
    let mut rng = StdRng::seed_from_u64(5);
    let members: Vec<usize> = (0..panel.test.len())
        .filter(|&i| panel.test.label(i) == class)
        .take(3)
        .collect();
    let features: Vec<Vector> = members
        .iter()
        .filter_map(|&i| {
            interpreter
                .interpret(&panel.model, panel.test.instance(i), class, &mut rng)
                .ok()
                .map(|r| r.interpretation.decision_features)
        })
        .collect();
    if !features.is_empty() {
        let avg = mean_vector(&features);
        println!("{}", signed_ascii(avg.as_slice(), 14, 14));
    }

    let x0 = panel.test.instance(members[0]).clone();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("openapi_interpret_one_class_196d", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| interpreter.interpret(&panel.model, &x0, class, &mut rng))
    });
    group.bench_function("heatmap_average_and_render", |b| {
        b.iter(|| {
            let avg = mean_vector(&features);
            signed_ascii(avg.as_slice(), 14, 14)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
