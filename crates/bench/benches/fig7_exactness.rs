//! Figure 7 bench: end-to-end attribution of each method class (OpenAPI,
//! LIME, ZOO, naive) with the regenerated L1Dist rows — the headline
//! exactness experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use openapi_bench::{banner, lmt_panel, plnn_panel};
use openapi_core::baselines::lime::LimeConfig;
use openapi_core::baselines::zoo::ZooConfig;
use openapi_core::{Method, NaiveConfig};
use openapi_metrics::exactness::{ground_truth_features, l1_dist};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig7(c: &mut Criterion) {
    banner(
        "Figure 7",
        "mean L1Dist to ground truth, 3 instances per panel",
    );
    for panel in [lmt_panel(), plnn_panel()] {
        let mut rng = StdRng::seed_from_u64(10);
        for method in Method::quality_lineup() {
            let mut total = 0.0;
            let mut n = 0;
            for i in 0..3 {
                let x0 = panel.test.instance(i);
                let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());
                if let Ok(attr) = method.attribution(&panel.model, x0, class, &mut rng) {
                    if attr.is_finite() {
                        let truth = ground_truth_features(&panel.model, x0, class);
                        total += l1_dist(&truth, &attr);
                        n += 1;
                    }
                }
            }
            if n > 0 {
                println!(
                    "{:<22} {:<12} mean L1Dist = {:.3e}",
                    panel.name,
                    method.name(),
                    total / n as f64
                );
            }
        }
    }

    let panel = plnn_panel();
    let x0 = panel.test.instance(0).clone();
    let class = openapi_api::PredictionApi::predict_label(&panel.model, x0.as_slice());

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for method in [
        Method::default(),
        Method::LimeLinear(LimeConfig::linear(1e-4)),
        Method::Zoo(ZooConfig::with_distance(1e-4)),
        Method::Naive(NaiveConfig::with_edge(1e-4)),
    ] {
        group.bench_function(format!("attribution_{}", method.name()), |b| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| method.attribution(&panel.model, &x0, class, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
