#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Shared fixtures for the Criterion benchmark harness.
//!
//! Every bench target needs a trained PLM panel; training inside the
//! benchmark loop would swamp the measurement, so panels are built once per
//! process behind `OnceLock`s at the bench-default scale (smoke profile:
//! `d = 196`, small models — the kernels under measurement are identical to
//! paper scale, only `d` and instance counts shrink).

use openapi_api::GroundTruthOracle;
use openapi_data::SynthStyle;
use openapi_eval::panel::{build_lmt_panel, build_plnn_panel};
use openapi_eval::{ExperimentConfig, Panel, Profile};
use openapi_linalg::Vector;
use std::collections::HashMap;
use std::sync::OnceLock;

/// The benchmark-scale experiment configuration (smoke profile).
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
    cfg.out_dir = std::env::temp_dir().join("openapi_bench_out");
    cfg
}

/// A trained PLNN panel on synthetic MNIST, built once.
pub fn plnn_panel() -> &'static Panel {
    static PANEL: OnceLock<Panel> = OnceLock::new();
    PANEL.get_or_init(|| build_plnn_panel(&bench_config(), SynthStyle::MnistLike))
}

/// A trained LMT panel on synthetic FMNIST, built once.
pub fn lmt_panel() -> &'static Panel {
    static PANEL: OnceLock<Panel> = OnceLock::new();
    PANEL.get_or_init(|| build_lmt_panel(&bench_config(), SynthStyle::FmnistLike))
}

/// Prints a one-line banner tying a bench target to its paper artifact.
pub fn banner(artifact: &str, detail: &str) {
    println!("\n### regenerating {artifact} at bench scale — {detail} ###");
}

/// `workload` test instances of the PLNN panel cycled round-robin over its
/// `max_regions` most populous regions (deterministic: ties broken by first
/// test index) — the shape real traffic has: many users, few hot regions.
/// Shared by the `batch_throughput` and `service_throughput` benches so
/// their numbers compare like for like.
pub fn hot_region_workload(workload: usize, max_regions: usize) -> Vec<Vector> {
    let panel = plnn_panel();
    let mut by_region: HashMap<_, Vec<usize>> = HashMap::new();
    for i in 0..panel.test.len() {
        let id = panel.model.region_id(panel.test.instance(i).as_slice());
        by_region.entry(id).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = by_region.into_values().collect();
    groups.sort_by_key(|g| (std::cmp::Reverse(g.len()), g[0]));
    groups.truncate(max_regions.max(1));
    (0..workload)
        .map(|k| {
            let group = &groups[k % groups.len()];
            panel.test.instance(group[(k / groups.len()) % group.len()])
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_cache() {
        let a = plnn_panel();
        let b = plnn_panel();
        assert!(std::ptr::eq(a, b), "OnceLock must cache");
        assert!(a.train_accuracy > 0.5);
        let l = lmt_panel();
        assert_eq!(l.model.family(), "LMT");
    }
}
