//! Shared fixtures for the Criterion benchmark harness.
//!
//! Every bench target needs a trained PLM panel; training inside the
//! benchmark loop would swamp the measurement, so panels are built once per
//! process behind `OnceLock`s at the bench-default scale (smoke profile:
//! `d = 196`, small models — the kernels under measurement are identical to
//! paper scale, only `d` and instance counts shrink).

use openapi_data::SynthStyle;
use openapi_eval::panel::{build_lmt_panel, build_plnn_panel};
use openapi_eval::{ExperimentConfig, Panel, Profile};
use std::sync::OnceLock;

/// The benchmark-scale experiment configuration (smoke profile).
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::for_profile(Profile::Smoke);
    cfg.out_dir = std::env::temp_dir().join("openapi_bench_out");
    cfg
}

/// A trained PLNN panel on synthetic MNIST, built once.
pub fn plnn_panel() -> &'static Panel {
    static PANEL: OnceLock<Panel> = OnceLock::new();
    PANEL.get_or_init(|| build_plnn_panel(&bench_config(), SynthStyle::MnistLike))
}

/// A trained LMT panel on synthetic FMNIST, built once.
pub fn lmt_panel() -> &'static Panel {
    static PANEL: OnceLock<Panel> = OnceLock::new();
    PANEL.get_or_init(|| build_lmt_panel(&bench_config(), SynthStyle::FmnistLike))
}

/// Prints a one-line banner tying a bench target to its paper artifact.
pub fn banner(artifact: &str, detail: &str) {
    println!("\n### regenerating {artifact} at bench scale — {detail} ###");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_cache() {
        let a = plnn_panel();
        let b = plnn_panel();
        assert!(std::ptr::eq(a, b), "OnceLock must cache");
        assert!(a.train_accuracy > 0.5);
        let l = lmt_panel();
        assert_eq!(l.model.family(), "LMT");
    }
}
