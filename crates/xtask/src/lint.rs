//! Source-level workspace invariant lints (no dependencies, no AST: the
//! rules are designed to be robust under a line-oriented scan with a small
//! comment/string-aware splitter).
//!
//! Rules:
//!
//! 1. **ordering-comment** — every `Ordering::Relaxed/Acquire/Release/
//!    AcqRel/SeqCst` use site carries a `// ordering:` justification on the
//!    same line or within the three lines above.
//! 2. **std-sync** — no direct `std::sync` primitive (`Mutex`, `RwLock`,
//!    `Condvar`, `atomic`) or `parking_lot` use outside `vendor/` and the
//!    `openapi-sync` facade; everything else must go through the facade so
//!    the loom lane actually checks it. `std::sync::{mpsc, Arc, ...}` remain
//!    fine — they are not shimmed.
//! 3. **crate-headers** — every workspace crate root declares both
//!    `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! 4. **float-eq** — no `partial_cmp` and no `==`/`!=` against a nonzero
//!    float literal outside the kernel bit-identity oracle paths, unless
//!    justified with a `// float:` comment. (Comparisons against exactly
//!    `0.0` are IEEE-exact guards and allowed.)
//! 5. **clock** — no direct `Instant::now()` or `SystemTime` in the
//!    serving-path crates (`serve`, `net`, `store`, `trace`); time is read
//!    through `openapi_trace::clock` so every latency measurement and trace
//!    timestamp shares one clock domain (and one place to virtualize it).
//!    The clock module itself is the single exemption; anything else needs
//!    a `// clock:` justification.
//!
//! The scanner skips `vendor/` (stand-ins mirror external APIs), `target/`,
//! and this crate itself (its fixtures and pattern literals would trip every
//! rule).

use std::fmt;
use std::path::Path;

/// How many lines above a use site a justification comment may sit.
const JUSTIFY_WINDOW: usize = 3;

/// Paths (prefix match) where bit-identity float comparison is the point.
const FLOAT_ORACLE_PATHS: &[&str] = &["crates/linalg/src/kernel", "tests/kernel_identity"];

/// One rule violation at a file/line.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A source line split into its code and comment parts.
struct SplitLine {
    code: String,
    comment: String,
}

/// Split each line into (code, comment), tracking string literals and block
/// comments so `//` inside a string is not a comment and patterns inside
/// comments are not code. Heuristic (no full lexer): raw strings containing
/// `//` may over-trim, which only makes the lint more conservative.
fn split_source(source: &str) -> Vec<SplitLine> {
    let mut out = Vec::new();
    let mut in_block = false;
    for line in source.lines() {
        let mut code = String::new();
        let mut comment = String::new();
        let mut chars = line.chars().peekable();
        let mut in_str = false;
        while let Some(c) = chars.next() {
            if in_block {
                comment.push(c);
                if c == '*' && chars.peek() == Some(&'/') {
                    comment.push(chars.next().expect("peeked"));
                    in_block = false;
                }
                continue;
            }
            if in_str {
                code.push(c);
                if c == '\\' {
                    if let Some(escaped) = chars.next() {
                        code.push(escaped);
                    }
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => {
                    in_str = true;
                    code.push(c);
                }
                // A double-quote char literal would start a phantom string.
                '\'' if chars.peek() == Some(&'"') => {
                    code.push(c);
                    code.push(chars.next().expect("peeked"));
                    if chars.peek() == Some(&'\'') {
                        code.push(chars.next().expect("peeked"));
                    }
                }
                '/' if chars.peek() == Some(&'/') => {
                    comment.push(c);
                    comment.push(chars.next().expect("peeked"));
                    comment.extend(chars.by_ref());
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    comment.push(c);
                    comment.push(chars.next().expect("peeked"));
                    in_block = true;
                }
                _ => code.push(c),
            }
        }
        out.push(SplitLine { code, comment });
    }
    out
}

/// True if a comment containing `tag` sits on line `idx`, within the
/// `JUSTIFY_WINDOW` lines above it, or anywhere in the contiguous
/// comment-only block directly above it — so a long prose justification
/// whose tag sits on its first line still counts.
fn justified(lines: &[SplitLine], idx: usize, tag: &str) -> bool {
    let mut block_top = idx;
    while block_top > 0 {
        let above = &lines[block_top - 1];
        if above.code.trim().is_empty() && !above.comment.trim().is_empty() {
            block_top -= 1;
        } else {
            break;
        }
    }
    let lo = idx.saturating_sub(JUSTIFY_WINDOW).min(block_top);
    lines[lo..=idx].iter().any(|l| l.comment.contains(tag))
}

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn check_ordering_comments(rel: &str, lines: &[SplitLine], out: &mut Vec<Violation>) {
    for (idx, l) in lines.iter().enumerate() {
        let uses_ordering = l.code.split("Ordering::").skip(1).any(|rest| {
            ORDERINGS
                .iter()
                .any(|o| rest.starts_with(o) && !rest[o.len()..].starts_with(char::is_alphanumeric))
        });
        if uses_ordering && !justified(lines, idx, "ordering:") {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "ordering-comment",
                message: "atomic Ordering use without an adjacent `// ordering:` justification"
                    .to_string(),
            });
        }
    }
}

/// `std::sync` names that must come from the `openapi-sync` facade instead.
const SHIMMED: &[&str] = &["Mutex", "RwLock", "Condvar", "atomic"];

fn check_std_sync(rel: &str, lines: &[SplitLine], out: &mut Vec<Violation>) {
    if rel.starts_with("vendor/") || rel.starts_with("crates/sync/") {
        return;
    }
    for (idx, l) in lines.iter().enumerate() {
        let mut offense = None;
        if l.code.contains("parking_lot") {
            offense = Some("direct `parking_lot` use; import from `openapi_sync` instead");
        } else if l.code.contains("std::sync") && SHIMMED.iter().any(|n| l.code.contains(n)) {
            offense = Some("direct `std::sync` primitive use; import from `openapi_sync` instead");
        }
        if let Some(message) = offense {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "std-sync",
                message: message.to_string(),
            });
        }
    }
}

/// Crate-root files (`crates/<name>/src/lib.rs`, root `src/lib.rs`) must
/// carry the safety/doc headers.
fn check_crate_headers(rel: &str, source: &str, out: &mut Vec<Violation>) {
    let crate_name = if rel == "src/lib.rs" {
        Some("openapi_repro")
    } else {
        rel.strip_prefix("crates/")
            .and_then(|rest| rest.split_once('/'))
            .filter(|(_, tail)| *tail == "src/lib.rs")
            .map(|(name, _)| name)
    };
    let Some(crate_name) = crate_name else { return };
    if !source.contains("#![forbid(unsafe_code)]") {
        out.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: "crate-headers",
            message: format!("crate `{crate_name}` is missing `#![forbid(unsafe_code)]`"),
        });
    }
    if !source.contains("#![deny(missing_docs)]") {
        out.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: "crate-headers",
            message: format!("crate `{crate_name}` is missing `#![deny(missing_docs)]`"),
        });
    }
}

/// Is `tok` a float literal (e.g. `1.0`, `0.5f64`, `1_000.25`)? Returns its
/// numeric value when so.
fn float_literal(tok: &str) -> Option<f64> {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok)
        .trim_end_matches('_');
    if !tok.contains('.') {
        return None;
    }
    let cleaned: String = tok.chars().filter(|&c| c != '_').collect();
    if !cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    cleaned.parse::<f64>().ok()
}

fn is_token_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')
}

/// Find `==`/`!=` comparisons where either side is a nonzero float literal.
fn has_nonzero_float_eq(code: &str) -> bool {
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(at) = code[start..].find(op) {
            let at = start + at;
            start = at + op.len();
            // Skip `!==`/`===`-like runs and `<=`,`>=` (second char of those
            // is `=`, but we matched from the first char so only exact
            // `==`/`!=` arrive here with a non-`=` predecessor).
            let before = &code[..at];
            let after = &code[at + op.len()..];
            if before.ends_with(['=', '!', '<', '>']) || after.starts_with('=') {
                continue;
            }
            let lhs: String = before
                .trim_end()
                .chars()
                .rev()
                .take_while(|&c| is_token_char(c))
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let rhs: String = after
                .trim_start()
                .chars()
                .take_while(|&c| is_token_char(c))
                .collect();
            let offender = [lhs.trim(), rhs.trim()]
                .into_iter()
                .filter_map(float_literal)
                .any(|v| v != 0.0);
            if offender {
                return true;
            }
        }
    }
    false
}

fn check_float_cmp(rel: &str, lines: &[SplitLine], out: &mut Vec<Violation>) {
    if FLOAT_ORACLE_PATHS.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    for (idx, l) in lines.iter().enumerate() {
        let mut offense = None;
        if l.code.contains(".partial_cmp(") {
            offense = Some("`partial_cmp` on floats outside the kernel oracle paths");
        } else if has_nonzero_float_eq(&l.code) {
            offense = Some("float `==`/`!=` against a nonzero literal");
        }
        if let Some(base) = offense {
            if !justified(lines, idx, "float:") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "float-eq",
                    message: format!("{base}; justify with a `// float:` comment or refactor"),
                });
            }
        }
    }
}

/// Serving-path crates whose code must read time through
/// `openapi_trace::clock`, so every latency measurement and trace
/// timestamp shares one clock domain.
const CLOCK_PATHS: &[&str] = &[
    "crates/serve/",
    "crates/net/",
    "crates/store/",
    "crates/trace/",
    "crates/fabric/",
];

/// The one file allowed to call `Instant::now()`: the clock itself.
const CLOCK_SOURCE: &str = "crates/trace/src/clock.rs";

fn check_clock(rel: &str, lines: &[SplitLine], out: &mut Vec<Violation>) {
    if rel == CLOCK_SOURCE || !CLOCK_PATHS.iter().any(|p| rel.starts_with(p)) {
        return;
    }
    for (idx, l) in lines.iter().enumerate() {
        let offense = if l.code.contains("Instant::now(") {
            Some("direct `Instant::now()` in a serving crate; use `openapi_trace::clock::now()`")
        } else if l.code.contains("SystemTime") {
            Some("`SystemTime` in a serving crate; read time through `openapi_trace::clock`")
        } else {
            None
        };
        if let Some(base) = offense {
            if !justified(lines, idx, "clock:") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "clock",
                    message: format!("{base}, or justify with a `// clock:` comment"),
                });
            }
        }
    }
}

/// Lint one file's source, `rel` being its workspace-relative path.
pub fn lint_file(rel: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    check_crate_headers(rel, source, &mut out);
    let lines = split_source(source);
    if !rel.starts_with("vendor/") {
        check_ordering_comments(rel, &lines, &mut out);
        check_float_cmp(rel, &lines, &mut out);
        check_clock(rel, &lines, &mut out);
    }
    check_std_sync(rel, &lines, &mut out);
    out
}

/// Recursively lint every `.rs` file under `root`. `vendor/` is exempted
/// per-rule (stand-ins keep their upstream API shape); `target/`, VCS
/// metadata, and this crate are skipped entirely.
pub fn lint_tree(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let source = match std::fs::read_to_string(root.join(&rel)) {
            Ok(s) => s,
            Err(err) => {
                out.push(Violation {
                    file: rel.clone(),
                    line: 0,
                    rule: "io",
                    message: format!("unreadable: {err}"),
                });
                continue;
            }
        };
        out.extend(lint_file(&rel, &source));
    }
    out.sort();
    out
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if matches!(rel.as_str(), "target" | ".git" | "crates/xtask")
                || rel.ends_with("/target")
            {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<&'static str> {
        lint_file(rel, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn ordering_without_justification_is_flagged() {
        let src = "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed)\n}\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), ["ordering-comment"]);
    }

    #[test]
    fn ordering_with_same_line_justification_passes() {
        let src = "a.load(Ordering::Relaxed) // ordering: counter, reader tolerates staleness\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn ordering_justified_within_three_lines_above_passes() {
        let src = "// ordering: generation bump ordered by the registry mutex;\n// the relaxed load below is always mutex-protected\nlet g =\n    a.load(Ordering::Relaxed);\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn ordering_four_lines_away_is_too_far() {
        let src = "// ordering: too far away\nlet _x = 1;\nlet _y = 2;\nlet _z = 3;\nlet g = a.load(Ordering::Acquire);\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), ["ordering-comment"]);
    }

    #[test]
    fn ordering_tag_atop_a_long_contiguous_comment_block_passes() {
        // The tag is 5 lines up, but the comment block runs unbroken into
        // the use site — long prose justifications are fine.
        let src = "// ordering: Relaxed is enough here because the registry\n// mutex carries the real edge; this block explains why at\n// length, spilling past the short window on purpose so the\n// walker has to follow the contiguous comment block all the\n// way up to the tag on its first line.\na.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn ordering_tag_above_an_interrupting_code_line_is_too_far() {
        // A code line severs the block: the tag belongs to *that* line,
        // not to the atomic op below the window.
        let src = "// ordering: justifies the line below only\n// (more prose)\nlet _x = 1;\nlet _y = 2;\nlet _z = 3;\na.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), ["ordering-comment"]);
    }

    #[test]
    fn ordering_mention_inside_comment_is_not_a_use_site() {
        let src = "// Ordering::Relaxed would be wrong here, see below.\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn cmp_ordering_variants_are_not_atomic_orderings() {
        let src = "let o = std::cmp::Ordering::Less;\nx.cmp(&y) == Ordering::Greater;\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn std_sync_mutex_is_flagged_outside_the_facade() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(rules("crates/net/src/x.rs", src), ["std-sync"]);
        let brace = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(rules("crates/net/src/x.rs", brace), ["std-sync"]);
        let atomic = "use std::sync::atomic::AtomicU64; // ordering: n/a\n";
        assert_eq!(rules("crates/net/src/x.rs", atomic), ["std-sync"]);
    }

    #[test]
    fn std_sync_nonprimitives_are_allowed() {
        let src = "use std::sync::{mpsc, Arc, OnceLock};\n";
        assert_eq!(rules("crates/net/src/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn parking_lot_is_flagged_outside_facade_and_vendor() {
        assert_eq!(
            rules("crates/serve/src/x.rs", "use parking_lot::RwLock;\n"),
            ["std-sync"]
        );
        assert_eq!(
            rules("crates/sync/src/facade.rs", "pub use parking_lot::Mutex;\n"),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules(
                "vendor/parking_lot/src/lib.rs",
                "std::sync::Mutex::new(v)\n"
            ),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn missing_headers_are_flagged_on_crate_roots() {
        let got = lint_file("crates/serve/src/lib.rs", "//! serve\n");
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|v| v.rule == "crate-headers"));
        // Non-root files are not required to carry the headers.
        assert_eq!(
            rules("crates/serve/src/stats.rs", "//! x\n"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn docs_header_required_on_every_crate_root() {
        let src = "#![forbid(unsafe_code)]\n//! data\n";
        assert_eq!(rules("crates/data/src/lib.rs", src), ["crate-headers"]);
        let both = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! store\n";
        assert_eq!(rules("crates/store/src/lib.rs", both), Vec::<&str>::new());
    }

    #[test]
    fn partial_cmp_is_flagged_unless_justified_or_oracle() {
        let src = "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(rules("crates/metrics/src/x.rs", src), ["float-eq"]);
        let justified =
            "// float: total order over finite scores\nxs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(
            rules("crates/metrics/src/x.rs", justified),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules("crates/linalg/src/kernel.rs", src),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn nonzero_float_equality_is_flagged_but_zero_guards_pass() {
        assert_eq!(
            rules("crates/nn/src/x.rs", "if x == 1.0 { y(); }\n"),
            ["float-eq"]
        );
        assert_eq!(
            rules("crates/nn/src/x.rs", "if 0.5f64 != x { y(); }\n"),
            ["float-eq"]
        );
        assert_eq!(
            rules("crates/nn/src/x.rs", "if denom == 0.0 { return None; }\n"),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules(
                "crates/nn/src/x.rs",
                "if n == 10 { y(); } // ints are fine\n"
            ),
            Vec::<&str>::new()
        );
        assert_eq!(
            rules("crates/nn/src/x.rs", "if a <= b && c >= d { y(); }\n"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn instant_now_in_serving_crates_is_flagged() {
        let src = "let t0 = Instant::now();\n";
        assert_eq!(rules("crates/serve/src/x.rs", src), ["clock"]);
        assert_eq!(rules("crates/net/src/x.rs", src), ["clock"]);
        assert_eq!(rules("crates/store/src/x.rs", src), ["clock"]);
        let qualified = "let t0 = std::time::Instant::now();\n";
        assert_eq!(rules("crates/net/src/x.rs", qualified), ["clock"]);
    }

    #[test]
    fn system_time_in_serving_crates_is_flagged() {
        let src = "let wall = SystemTime::now();\n";
        assert_eq!(rules("crates/store/src/x.rs", src), ["clock"]);
    }

    #[test]
    fn clock_module_and_non_serving_crates_are_exempt() {
        let src = "let t0 = Instant::now();\n";
        assert_eq!(rules("crates/trace/src/clock.rs", src), Vec::<&str>::new());
        // Measurement crates (eval, bench) sit outside the serving path.
        assert_eq!(rules("crates/eval/src/x.rs", src), Vec::<&str>::new());
        assert_eq!(rules("crates/bench/benches/x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn clock_justification_comment_passes() {
        let src = "// clock: wall-clock file mtime, not a latency measurement\nlet t0 = SystemTime::now();\n";
        assert_eq!(rules("crates/store/src/x.rs", src), Vec::<&str>::new());
        let mention = "// Instant::now() is forbidden here; see openapi_trace::clock.\n";
        assert_eq!(rules("crates/serve/src/x.rs", mention), Vec::<&str>::new());
    }

    #[test]
    fn string_literals_do_not_hide_comments_or_fake_them() {
        // `//` inside a string is not a comment...
        let src = "let url = \"https://example\"; let g = a.load(Ordering::Relaxed);\n";
        assert_eq!(rules("crates/net/src/x.rs", src), ["ordering-comment"]);
        // ...and a justification inside a string is not a justification.
        let fake = "let s = \"// ordering: fake\"; a.load(Ordering::Relaxed);\n";
        assert_eq!(rules("crates/net/src/x.rs", fake), ["ordering-comment"]);
    }

    #[test]
    fn the_workspace_tree_is_clean() {
        // Self-gating: tier-1 `cargo test` fails if any source regresses the
        // invariants `cargo xtask lint` enforces.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("workspace root");
        let violations = lint_tree(root);
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
