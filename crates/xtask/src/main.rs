#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `cargo xtask` — workspace tooling. Currently one subcommand: `lint`.

mod lint;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = workspace_root();
            let violations = lint::lint_tree(&root);
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                eprintln!("xtask lint: ok");
            } else {
                eprintln!("xtask lint: {} violation(s)", violations.len());
                std::process::exit(1);
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask lint\n  (got: {:?})",
                other.unwrap_or("<none>")
            );
            std::process::exit(2);
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}
