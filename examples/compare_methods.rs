//! Head-to-head: every interpretation method on the same prediction.
//!
//! Reproduces the flavour of the paper's Figures 5–7 on a single instance:
//! OpenAPI against LIME (linear/ridge), ZOO, and the naive method across
//! perturbation distances, plus the white-box gradient methods — each
//! scored by L1 distance to the exact ground-truth decision features. Run:
//!
//! ```text
//! cargo run --release --example compare_methods
//! ```

use openapi_repro::api::{GroundTruthOracle, LocalLinearModel, TwoRegionPlm};
use openapi_repro::core::Method;
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A PLM with two regions split at x0 = 0.5, like the paper's Figure 1.
    // The interpreted instance sits only 0.003 from the boundary, so any
    // method probing farther than that silently mixes two linear regimes.
    // LocalLinearModel wants W ∈ R^{d×C}; here d = 2 features, C = 2.
    let low = LocalLinearModel::new(
        Matrix::from_rows(&[&[3.0, -1.0], &[0.5, 2.0]]).expect("static shape"),
        Vector(vec![0.0, 0.1]),
    );
    let high = LocalLinearModel::new(
        Matrix::from_rows(&[&[-2.0, 1.0], &[0.0, 3.0]]).expect("static shape"),
        Vector(vec![0.5, -0.5]),
    );
    let model = TwoRegionPlm::axis_split(0, 0.5, low, high);
    let x0 = Vector(vec![0.497, 0.2]);
    let class = 0usize;
    let truth = model.local_model(x0.as_slice()).decision_features(class);
    println!(
        "instance {:?}, boundary margin {:.3}",
        x0.as_slice(),
        model.boundary_margin(x0.as_slice())
    );
    println!("ground-truth D_{class} = {:?}\n", truth.as_slice());

    let mut methods = Method::quality_lineup();
    methods.extend(
        Method::effectiveness_lineup()
            .into_iter()
            .filter(|m| !m.is_black_box()),
    );

    println!("{:<12} {:>12}  verdict", "method", "L1Dist");
    println!("{}", "-".repeat(44));
    for method in methods {
        let mut rng = StdRng::seed_from_u64(99);
        match method.attribution(&model, &x0, class, &mut rng) {
            Ok(attr) => {
                let err = truth.l1_distance(&attr).unwrap();
                let verdict = if err < 1e-6 {
                    "exact"
                } else if err < 1e-2 {
                    "close"
                } else {
                    "WRONG"
                };
                println!("{:<12} {:>12.3e}  {verdict}", method.name(), err);
            }
            Err(e) => println!("{:<12} {:>12}  failed: {e}", method.name(), "—"),
        }
    }
    println!(
        "\nreading: OpenAPI adapts its hypercube inside the 0.003-wide margin and stays\n\
         exact; fixed-h methods are exact only when h happens to be small enough; the\n\
         gradient methods answer a different question (attribution, not core\n\
         parameters) and are scored on the same scale for reference."
    );
}
