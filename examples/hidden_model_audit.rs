//! Audit a cloud image classifier you can only query.
//!
//! The scenario the paper's introduction motivates: a vendor exposes a
//! 10-class garment classifier over an API. We train that "vendor model"
//! (a PLNN on synthetic Fashion-MNIST-like data), then play the auditor:
//! query-only access, per-query accounting, and a need to know *which
//! pixels* the model actually bases a given decision on. Run with:
//!
//! ```text
//! cargo run --release --example hidden_model_audit
//! ```
//!
//! With `--chaos`, the one-shot audit becomes a **continuous auditing
//! workload** against a misbehaving vendor: the API rate-limits, fails
//! transiently, spikes — and, mid-soak, silently swaps in a fine-tuned
//! model behind the same endpoint. The
//! interpretation service's drift detector must notice every stale
//! region, tombstone it, and re-solve; the run asserts **zero stale
//! serves** (every reply explains a fresh probe of whatever the endpoint
//! computes *now*) and exits non-zero otherwise:
//!
//! ```text
//! cargo run --release --example hidden_model_audit -- --chaos [--soak-rounds N] [--seed S]
//! ```

use openapi_repro::api::{ChaosApi, CountingApi};
use openapi_repro::data::synth::{ascii_art, SynthConfig, SynthStyle};
use openapi_repro::data::Dataset;
use openapi_repro::metrics::heatmap::signed_ascii;
use openapi_repro::nn::{train, Activation, Optimizer, Plnn, TrainConfig};
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let mut chaos = false;
    let mut rounds = 4usize;
    let mut seed = 0xC4A05u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--chaos" => chaos = true,
            "--soak-rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--soak-rounds needs a round count");
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a u64");
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; flags: --chaos [--soak-rounds N] [--seed S]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        rounds >= 2,
        "--soak-rounds needs at least a warm round and a post-swap round"
    );

    // ---- vendor side (hidden from the auditor) -------------------------
    let (train_set, test_set) =
        SynthConfig::small(SynthStyle::FmnistLike, 1500, 100, 11).generate();
    let mut rng = StdRng::seed_from_u64(12);
    let mut vendor_model = Plnn::mlp(&[784, 48, 24, 10], Activation::ReLU, &mut rng);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 32,
        optimizer: Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    let report = train(&mut vendor_model, &train_set, &cfg, &mut rng);
    println!(
        "vendor model trained: {:.1}% training accuracy ({} parameters)\n",
        report.final_train_accuracy * 100.0,
        vendor_model.param_count()
    );

    if chaos {
        chaos_audit(vendor_model, &train_set, &test_set, rounds, seed, &mut rng);
        return;
    }

    // ---- auditor side ---------------------------------------------------
    let api = CountingApi::new(&vendor_model);
    let class_names = SynthStyle::FmnistLike.class_names();
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());

    // Audit three predictions.
    for idx in [0usize, 3, 7] {
        let x0 = test_set.instance(idx);
        let label = test_set.label(idx);
        let predicted = api.predict_label(x0.as_slice());
        println!(
            "--- instance {idx}: true class {}, API predicts {} ---",
            class_names[label], class_names[predicted]
        );
        println!("input image:");
        println!("{}", ascii_art(x0));

        let before = api.queries();
        match interpreter.interpret(&api, x0, predicted, &mut rng) {
            Ok(result) => {
                println!(
                    "decision features for '{}' (exact; {} queries, {} iteration(s)):",
                    class_names[predicted],
                    api.queries() - before,
                    result.iterations
                );
                println!(
                    "{}",
                    signed_ascii(result.interpretation.decision_features.as_slice(), 28, 28)
                );
                println!("('#'/'+' pixels support the predicted class, '='/'-' oppose it)\n");
            }
            Err(e) => println!("interpretation failed: {e}\n"),
        }
    }
    println!("total audit cost: {} prediction queries", api.queries());
}

/// The continuous-auditing soak: serve the same audit panel round after
/// round through an [`InterpretationService`] fronting a [`ChaosApi`],
/// swap the vendor model silently at the midpoint, and assert the drift
/// detector leaves zero stale serves behind.
fn chaos_audit(
    v1: Plnn,
    train_set: &Dataset,
    test_set: &Dataset,
    rounds: usize,
    seed: u64,
    rng: &mut StdRng,
) {
    println!("=== continuous audit under chaos (seed {seed:#x}, {rounds} rounds) ===");

    // The silent model update: the vendor quietly fine-tunes the deployed
    // model for two more epochs. Same endpoint, same shape — only the
    // function changes, which only `explains_probe` can notice.
    let mut v2 = v1.clone();
    let finetune = TrainConfig {
        epochs: 2,
        batch_size: 32,
        optimizer: Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    train(&mut v2, train_set, &finetune, rng);

    // Value-preserving chaos only: refusals and spikes change nothing the
    // solver sees. Output *noise* is exercised at value scale in
    // `tests/chaos_drift.rs` — this vendor model trains to saturation, so
    // some class probabilities underflow toward zero and the log-ratio
    // membership test would read ANY absolute noise as unbounded drift.
    let api = ChaosApi::new(v1, seed).with_standby(v2);
    api.configure(|c| {
        c.rate_limit_rate = 0.05;
        c.transient_rate = 0.10;
        c.latency_spike_rate = 0.10;
        c.spike = Duration::ZERO; // counted, not slept: the soak stays fast
    });
    let config = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let rtol = config.openapi.rtol;
    // A durable store under the cache, so convictions leave tombstones a
    // restart (or a gossiping peer) must also respect.
    let store_dir =
        std::env::temp_dir().join(format!("openapi_chaos_audit_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("store dir");
    let svc = InterpretationService::open(api, config, &store_dir).expect("open service");

    let panel: Vec<Vector> = (0..12).map(|i| test_set.instance(i).clone()).collect();
    let swap_before = rounds / 2;
    let mut stale = 0u64;
    for round in 0..rounds {
        if round == swap_before {
            svc.api().schedule_swap(svc.api().stats().served);
            println!("--- vendor silently swaps the model before round {round} ---");
        }
        for x in &panel {
            let class = svc.api().live().predict_label(x.as_slice());
            let served = svc
                .submit_instance(x.clone(), class)
                .wait()
                .expect("serves");
            // The zero-stale check: every reply must explain a fresh,
            // chaos-free probe of what the endpoint computes *now*.
            let live = svc.api().live().predict(x.as_slice());
            if !served
                .interpretation
                .explains_probe(x, live.as_slice(), rtol)
            {
                stale += 1;
                eprintln!(
                    "STALE SERVE in round {round}: {:?} no longer explained",
                    served.outcome
                );
            }
        }
        let stats = svc.stats();
        let drift = stats.drift.expect("service stats carry drift counters");
        println!(
            "round {round}: {} queries total, drift detected {} / resolved {}",
            stats.queries, drift.detected, drift.resolves
        );
        if round < swap_before {
            assert_eq!(drift.detected, 0, "false drift conviction before the swap");
        }
    }

    // The active sweep after traffic: everything stale must already have
    // been convicted on first touch, so the sweep comes back empty.
    let swept = svc.audit_drift();
    let drift = svc
        .stats()
        .drift
        .expect("service stats carry drift counters");
    let chaos = svc.api().stats();
    println!("chaos injected: {chaos:?}");
    println!("drift counters: {drift:?}");
    assert_eq!(chaos.swaps, 1, "the silent swap never fired");
    assert!(
        chaos.rate_limited + chaos.transient > 0,
        "the chaos schedule injected no refusals"
    );
    assert!(drift.detected > 0, "the model swap went undetected");
    assert_eq!(
        drift.tombstones, drift.detected,
        "every convicted region must be tombstoned"
    );
    assert_eq!(
        drift.resolves, drift.detected,
        "every conviction must re-solve"
    );
    assert_eq!(
        swept, 0,
        "traffic left a stale region for the sweep to find"
    );
    assert_eq!(stale, 0, "stale serves escaped the drift detector");
    println!(
        "zero stale serves across {} requests ({} regions tombstoned and re-solved)",
        rounds * panel.len(),
        drift.tombstones
    );
    svc.close().expect("close service");
    let _ = std::fs::remove_dir_all(&store_dir);
}
