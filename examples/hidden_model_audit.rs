//! Audit a cloud image classifier you can only query.
//!
//! The scenario the paper's introduction motivates: a vendor exposes a
//! 10-class garment classifier over an API. We train that "vendor model"
//! (a PLNN on synthetic Fashion-MNIST-like data), then play the auditor:
//! query-only access, per-query accounting, and a need to know *which
//! pixels* the model actually bases a given decision on. Run with:
//!
//! ```text
//! cargo run --release --example hidden_model_audit
//! ```

use openapi_repro::api::CountingApi;
use openapi_repro::data::synth::{ascii_art, SynthConfig, SynthStyle};
use openapi_repro::metrics::heatmap::signed_ascii;
use openapi_repro::nn::{train, Activation, Optimizer, Plnn, TrainConfig};
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- vendor side (hidden from the auditor) -------------------------
    let (train_set, test_set) =
        SynthConfig::small(SynthStyle::FmnistLike, 1500, 100, 11).generate();
    let mut rng = StdRng::seed_from_u64(12);
    let mut vendor_model = Plnn::mlp(&[784, 48, 24, 10], Activation::ReLU, &mut rng);
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 32,
        optimizer: Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    let report = train(&mut vendor_model, &train_set, &cfg, &mut rng);
    println!(
        "vendor model trained: {:.1}% training accuracy ({} parameters)\n",
        report.final_train_accuracy * 100.0,
        vendor_model.param_count()
    );

    // ---- auditor side ---------------------------------------------------
    let api = CountingApi::new(&vendor_model);
    let class_names = SynthStyle::FmnistLike.class_names();
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());

    // Audit three predictions.
    for idx in [0usize, 3, 7] {
        let x0 = test_set.instance(idx);
        let label = test_set.label(idx);
        let predicted = api.predict_label(x0.as_slice());
        println!(
            "--- instance {idx}: true class {}, API predicts {} ---",
            class_names[label], class_names[predicted]
        );
        println!("input image:");
        println!("{}", ascii_art(x0));

        let before = api.queries();
        match interpreter.interpret(&api, x0, predicted, &mut rng) {
            Ok(result) => {
                println!(
                    "decision features for '{}' (exact; {} queries, {} iteration(s)):",
                    class_names[predicted],
                    api.queries() - before,
                    result.iterations
                );
                println!(
                    "{}",
                    signed_ascii(result.interpretation.decision_features.as_slice(), 28, 28)
                );
                println!("('#'/'+' pixels support the predicted class, '='/'-' oppose it)\n");
            }
            Err(e) => println!("interpretation failed: {e}\n"),
        }
    }
    println!("total audit cost: {} prediction queries", api.queries());
}
