//! Train once, persist, and audit later — the model-registry workflow.
//!
//! A realistic deployment splits the lifecycle: a training job produces a
//! model artifact; a serving job loads it behind an API; an audit job
//! interprets its predictions. This example walks all three stages using
//! the workspace's binary model formats (`OANN` for networks, `OALM` for
//! logistic model trees). Run with:
//!
//! ```text
//! cargo run --release --example model_registry
//! ```

use openapi_repro::data::downsample;
use openapi_repro::data::synth::{SynthConfig, SynthStyle};
use openapi_repro::lmt::{Lmt, LmtConfig, LogisticConfig};
use openapi_repro::nn::{train, Activation, Optimizer, Plnn, TrainConfig};
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let registry = std::env::temp_dir().join("openapi_model_registry");
    std::fs::create_dir_all(&registry).expect("create registry dir");

    // ---- stage 1: the training job -------------------------------------
    let (train_set, test_set) = {
        let (tr, te) = SynthConfig::small(SynthStyle::MnistLike, 800, 50, 41).generate();
        (downsample(&tr, 2), downsample(&te, 2))
    };
    let mut rng = StdRng::seed_from_u64(42);

    let mut net = Plnn::mlp(&[train_set.dim(), 32, 16, 10], Activation::ReLU, &mut rng);
    let nn_cfg = TrainConfig {
        epochs: 10,
        batch_size: 32,
        optimizer: Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    let nn_report = train(&mut net, &train_set, &nn_cfg, &mut rng);

    let lmt_cfg = LmtConfig {
        min_leaf_instances: 150,
        logistic: LogisticConfig {
            epochs: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let tree = Lmt::fit(&train_set, &lmt_cfg, &mut rng);

    let net_path = registry.join("digit_classifier.oann");
    let tree_path = registry.join("digit_classifier.oalm");
    net.save(&net_path).expect("persist network");
    tree.save(&tree_path).expect("persist tree");
    println!(
        "training job done: PLNN acc {:.3} -> {} ({} bytes); LMT {} leaves -> {} ({} bytes)\n",
        nn_report.final_train_accuracy,
        net_path.display(),
        std::fs::metadata(&net_path).unwrap().len(),
        tree.num_leaves(),
        tree_path.display(),
        std::fs::metadata(&tree_path).unwrap().len(),
    );
    drop(net);
    drop(tree);

    // ---- stage 2: the serving job loads the artifacts -------------------
    let served_net = Plnn::load(&net_path).expect("load network artifact");
    let served_tree = Lmt::load(&tree_path).expect("load tree artifact");

    // ---- stage 3: the audit job interprets served predictions ----------
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
    for (name, api) in [
        ("PLNN", &served_net as &dyn PredictionApi),
        ("LMT", &served_tree as &dyn PredictionApi),
    ] {
        let x0 = test_set.instance(0);
        let class = api.predict_label(x0.as_slice());
        match interpreter.interpret(&api, x0, class, &mut rng) {
            Ok(result) => {
                let top: Vec<usize> = {
                    let d = &result.interpretation.decision_features;
                    let mut idx: Vec<usize> = (0..d.len()).collect();
                    // float: sort comparator over finite decision features.
                    idx.sort_by(|&a, &b| d[b].abs().partial_cmp(&d[a].abs()).unwrap());
                    idx.into_iter().take(5).collect()
                };
                println!(
                    "{name}: predicted class {class}; top-5 decision pixels {top:?} \
                     ({} queries, {} iterations)",
                    result.queries, result.iterations
                );
            }
            Err(e) => println!("{name}: interpretation failed: {e}"),
        }
    }

    std::fs::remove_dir_all(&registry).ok();
    println!("\nregistry cleaned up.");
}
