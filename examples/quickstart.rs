//! Quickstart: interpret a model you can only query.
//!
//! Builds a small ReLU network (a piecewise linear model), hides it behind
//! the prediction-API boundary, and asks OpenAPI *why* the model classifies
//! one instance the way it does. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use openapi_repro::api::CountingApi;
use openapi_repro::nn::{Activation, Plnn};
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Somebody else's model: a 6-input, 3-class ReLU network. In the real
    //    setting you would not have this object — only its HTTP endpoint.
    let mut rng = StdRng::seed_from_u64(7);
    let hidden_model = Plnn::mlp(&[6, 12, 8, 3], Activation::ReLU, &mut rng);

    // 2. The API boundary: all we can do is submit instances and read
    //    probabilities (the counter shows what the audit costs).
    let api = CountingApi::new(&hidden_model);

    // 3. An instance whose prediction we want explained.
    let x0 = Vector(vec![0.8, -0.3, 0.5, 0.1, -0.6, 0.9]);
    let probs = api.predict(x0.as_slice());
    let class = api.predict_label(x0.as_slice());
    println!("prediction: class {class} with probabilities {probs:?}\n");

    // 4. OpenAPI: exact decision features from queries alone.
    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
    let result = interpreter
        .interpret(&api, &x0, class, &mut rng)
        .expect("interior instances are interpretable with probability 1");

    println!(
        "decision features D_{class} (exact, recovered via {} queries,",
        result.queries
    );
    println!(
        "{} sampling iteration(s), final hypercube edge {:.3e}):\n",
        result.iterations, result.final_edge
    );
    for (i, w) in result.interpretation.decision_features.iter().enumerate() {
        let direction = if *w > 0.0 { "supports" } else { "opposes " };
        println!("  feature {i}: {w:+.4}  ({direction} class {class})");
    }

    // 5. Verify the claim of exactness against the white-box ground truth
    //    (possible here because we own the model; a real auditor could not).
    let truth = hidden_model
        .local_linear_map(x0.as_slice())
        .decision_features(class);
    let err = result
        .interpretation
        .decision_features
        .l1_distance(&truth)
        .unwrap();
    println!("\nL1 distance to the ground-truth decision features: {err:.3e}");
    assert!(err < 1e-6, "OpenAPI should be exact");
    println!("=> exact to solver precision.");
}
