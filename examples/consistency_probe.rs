//! Consistency: why region-constant interpretations matter.
//!
//! Gradient*Input and Integrated Gradients hand *different* explanations to
//! two inputs classified by the very same locally linear classifier; OpenAPI
//! (and any method recovering the true decision features) gives them the
//! identical explanation. This example measures that on a trained network,
//! mirroring the paper's Figure 4. Run with:
//!
//! ```text
//! cargo run --release --example consistency_probe
//! ```

use openapi_repro::core::baselines::gradient::{GradientInput, IntegratedGradients, SaliencyMaps};
use openapi_repro::data::synth::{SynthConfig, SynthStyle};
use openapi_repro::data::{downsample, nearest_neighbor};
use openapi_repro::nn::{train, Activation, Optimizer, Plnn, TrainConfig};
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Train a small PLNN on 14×14 synthetic digits.
    let (train_set, test_set) = {
        let (tr, te) = SynthConfig::small(SynthStyle::MnistLike, 800, 120, 21).generate();
        (downsample(&tr, 2), downsample(&te, 2))
    };
    let mut rng = StdRng::seed_from_u64(22);
    let mut net = Plnn::mlp(&[196, 32, 16, 10], Activation::ReLU, &mut rng);
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 32,
        optimizer: Optimizer::adam(3e-3),
        weight_decay: 0.0,
    };
    let _ = train(&mut net, &train_set, &cfg, &mut rng);

    let interpreter = OpenApiInterpreter::new(OpenApiConfig::default());
    let gi = GradientInput::default();
    let ig = IntegratedGradients::default();
    let sal = SaliencyMaps::default();

    println!("cosine similarity between the interpretations of each test instance");
    println!("and its nearest neighbour (higher = more consistent):\n");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "instance", "OpenAPI", "Grad*Inp", "IntegGrad", "Saliency"
    );

    let mut sums = [0.0f64; 4];
    let mut count = 0;
    for i in 0..10 {
        let x0 = test_set.instance(i);
        let nn_idx = nearest_neighbor(&test_set, x0, Some(i)).expect("non-trivial test set");
        let x1 = test_set.instance(nn_idx);
        let class = net.predict_label(x0.as_slice());

        let cs = |a: &Vector, b: &Vector| a.cosine_similarity(b).unwrap();
        let oa = match (
            interpreter.interpret(&net, x0, class, &mut rng),
            interpreter.interpret(&net, x1, class, &mut rng),
        ) {
            (Ok(a), Ok(b)) => cs(
                &a.interpretation.decision_features,
                &b.interpretation.decision_features,
            ),
            _ => f64::NAN,
        };
        let g = cs(
            &gi.interpret(&net, x0, class).unwrap().decision_features,
            &gi.interpret(&net, x1, class).unwrap().decision_features,
        );
        let igv = cs(
            &ig.interpret(&net, x0, class).unwrap().decision_features,
            &ig.interpret(&net, x1, class).unwrap().decision_features,
        );
        let s = cs(
            &sal.interpret(&net, x0, class).unwrap().decision_features,
            &sal.interpret(&net, x1, class).unwrap().decision_features,
        );
        println!("{i:<10} {oa:>10.4} {g:>10.4} {igv:>10.4} {s:>10.4}");
        for (acc, v) in sums.iter_mut().zip([oa, g, igv, s]) {
            if v.is_finite() {
                *acc += v;
            }
        }
        count += 1;
    }
    println!("{}", "-".repeat(54));
    print!("{:<10}", "mean");
    for acc in sums {
        print!(" {:>10.4}", acc / count as f64);
    }
    println!();
    println!(
        "\nOpenAPI's scores are 1.0 exactly whenever the neighbour shares the\n\
         instance's locally linear region; gradient attributions vary with the\n\
         input even inside one region."
    );
}
