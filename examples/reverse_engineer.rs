//! Reverse-engineer the classifier behind an API (paper §VI, built here).
//!
//! One OpenAPI run recovers the *entire* local classifier — every pairwise
//! core parameter — which is enough to clone the API's behaviour throughout
//! the locally linear region and to measure how far that region extends.
//! Run with:
//!
//! ```text
//! cargo run --release --example reverse_engineer
//! ```

use openapi_repro::api::{CountingApi, LocalLinearModel, TwoRegionPlm};
use openapi_repro::core::reverse::{agreement_rate, boundary_probe, ReconstructedPlm};
use openapi_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The hidden service: a two-region PLM (3 features, 3 classes).
    let low = LocalLinearModel::new(
        Matrix::from_rows(&[&[1.0, -0.5, 0.2], &[0.3, 1.5, -0.8], &[-0.7, 0.4, 1.1]])
            .expect("static shape"),
        Vector(vec![0.1, 0.0, -0.1]),
    );
    let high = LocalLinearModel::new(
        Matrix::from_rows(&[&[-1.2, 0.8, 0.4], &[0.9, -0.3, 0.6], &[0.2, 0.7, -1.0]])
            .expect("static shape"),
        Vector(vec![-0.2, 0.3, 0.0]),
    );
    let hidden = TwoRegionPlm::axis_split(0, 1.0, low, high);
    let api = CountingApi::new(&hidden);

    let x0 = Vector(vec![0.4, 0.1, -0.2]); // 0.6 away from the boundary
    let mut rng = StdRng::seed_from_u64(5);

    println!("extracting the local classifier at {:?}…", x0.as_slice());
    let recon = ReconstructedPlm::extract(&api, &x0, &OpenApiConfig::default(), &mut rng)
        .expect("interior point: extraction succeeds with probability 1");
    println!("done in {} queries.\n", api.queries());

    // 1. The clone reproduces the API inside the region…
    let near = agreement_rate(&api, &recon, &x0, 0.05, 300, 1e-9, &mut rng);
    println!(
        "agreement with the API in a ±0.05 cube:  {:.1}%",
        near * 100.0
    );
    // …but not beyond it.
    let far = agreement_rate(&api, &recon, &x0, 1.5, 300, 1e-9, &mut rng);
    println!(
        "agreement with the API in a ±1.50 cube:  {:.1}%",
        far * 100.0
    );

    // 2. Probe where the region actually ends, in both directions along x₀.
    println!("\nboundary probing along ±e₀ (true boundary at distance 0.6):");
    for (label, dir) in [("+e0", vec![1.0, 0.0, 0.0]), ("-e0", vec![-1.0, 0.0, 0.0])] {
        match boundary_probe(&api, &recon, &x0, &Vector(dir), 3.0, 1e-5, 1e-9) {
            Some(t) => println!("  {label}: boundary at distance {t:.4}"),
            None => println!("  {label}: no boundary within radius 3.0"),
        }
    }

    // 3. The clone is a drop-in PredictionApi: labels agree inside the region.
    let mut agree = 0;
    let total = 200;
    for _ in 0..total {
        let probe = openapi_repro::core::sampler::sample_in_hypercube(x0.as_slice(), 0.3, &mut rng);
        if api.predict_label(probe.as_slice()) == recon.predict_label(probe.as_slice()) {
            agree += 1;
        }
    }
    println!("\nlabel agreement on 0.3-cube probes: {agree}/{total}");
}
