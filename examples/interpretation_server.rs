//! Interpretation server: the exact-interpretation stack behind a real
//! TCP endpoint — a thin wrapper over `openapi_net::Server`.
//!
//! Spins up an `openapi-serve` `InterpretationService` over a hidden ReLU
//! network (a PLNN — queries only, no parameter access) and exposes it on
//! a socket speaking the `openapi-net` wire protocol (see
//! `docs/PROTOCOL.md`). Two modes:
//!
//! **Listen mode** — serve remote clients until killed:
//!
//! ```text
//! cargo run --release --example interpretation_server -- --listen 127.0.0.1:7077
//! ```
//!
//! Any `openapi_net::Client` can then ping it, fetch stats, and request
//! interpretations; `openapi-exp queries --remote 127.0.0.1:7077` drives a
//! whole experiment through it. With one or more repeatable `--peer ADDR`
//! flags (plus `--store-dir`, which replication requires), the server
//! joins the anti-entropy fabric: it gossips digests with its peers and
//! pulls any region a peer has already solved, so a cluster of servers
//! fronting the same hidden model pays each Algorithm-1 solve once
//! cluster-wide (see `docs/ARCHITECTURE.md`, fabric tier). Two
//! observability flags ride along:
//! `--metrics-addr ADDR` binds a plain-HTTP sidecar answering every
//! connection with the Prometheus text exposition (`curl
//! http://ADDR/metrics`), and `--slow-ms MS` arms the sampling
//! slow-request log (per-stage timelines on stderr for any request over
//! the threshold).
//!
//! **Demo mode** (no `--listen`) — bind an ephemeral port, hammer it from
//! four real TCP clients whose traffic overlaps on the same regions, and
//! print the service statistics: the first request into each region pays
//! the Algorithm-1 solve, everyone else is served the exact cached
//! parameters for one membership probe. With `--store-dir DIR` the demo
//! then *restarts* the server against the same directory and replays the
//! traffic — zero additional Algorithm-1 solves:
//!
//! ```text
//! cargo run --release --example interpretation_server -- --store-dir /tmp/openapi-regions
//! ```

use openapi_repro::api::CountingApi;
use openapi_repro::nn::{Activation, Plnn};
use openapi_repro::prelude::*;
use openapi_repro::trace::slowlog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 50;
const DIM: usize = 6;

/// A prediction API reached over a network: every query pays a round trip.
/// This is the deployment reality the paper's threat model describes — and
/// what makes the service's cache, store, and coalescing matter: queries,
/// not linear algebra, dominate the cost of an interpretation.
struct RemoteApi<M> {
    inner: M,
    round_trip: Duration,
}

impl<M: PredictionApi> PredictionApi for RemoteApi<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        std::thread::sleep(self.round_trip);
        self.inner.predict(x)
    }
}

type DemoApi = CountingApi<RemoteApi<Plnn>>;

/// Builds the demo server: the hidden model behind its service, behind a
/// socket. With a store directory, solved regions are durable.
fn build_server(listen: &str, store_dir: Option<&PathBuf>, model_id: u64) -> Server<DemoApi> {
    // Somebody else's model behind an API boundary: a 6-input, 3-class
    // ReLU network, reachable only over a ~300 µs round trip. The counter
    // meters what the audit traffic costs. (Same seed every life: the
    // *model* persists across our simulated restarts, as it would in
    // production — only our serving process restarts.)
    let mut rng = StdRng::seed_from_u64(7);
    let hidden_model = Plnn::mlp(&[DIM, 12, 8, 3], Activation::ReLU, &mut rng);
    let api = CountingApi::new(RemoteApi {
        inner: hidden_model,
        round_trip: Duration::from_micros(300),
    });
    let config = ServiceConfig {
        workers: CLIENTS,
        ..ServiceConfig::default()
    };
    let service = match store_dir {
        Some(dir) => InterpretationService::open(api, config, dir)
            .expect("store directory must open (is it a store?)"),
        None => InterpretationService::new(api, config),
    };
    let config = ServerConfig {
        model_id,
        ..ServerConfig::default()
    };
    Server::bind(listen, service, config).expect("listen address must bind")
}

/// Four TCP clients, each interpreting 50 predictions over the wire.
/// Instances are drawn from a handful of anchor points with small jitter,
/// so the traffic has the shape real serving sees: many users, few hot
/// regions — which is exactly what the Theorem-2 cache (and store)
/// exploit.
fn drive_traffic(server: &Server<DemoApi>) {
    let addr = server.local_addr();
    let anchors: Vec<Vector> = (0..5)
        .map(|a| {
            Vector(
                (0..DIM)
                    .map(|j| ((a * DIM + j) as f64 * 0.83).sin())
                    .collect(),
            )
        })
        .collect();
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let (server, anchors) = (server, &anchors);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("handshake");
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let anchor = &anchors[rng.gen_range(0..anchors.len())];
                    let mut x = anchor.clone();
                    for v in x.iter_mut() {
                        *v += rng.gen_range(-0.01..0.01);
                    }
                    // In deployment the client knows its predicted class
                    // (it has the prediction it wants interpreted); the
                    // demo asks the in-process model for it.
                    let class = server.service().api().predict_label(x.as_slice());
                    client
                        .interpret(&x, class)
                        .expect("interior instances interpret");
                }
            });
        }
    });
}

/// Answers each connection on `listener` with one Prometheus text
/// exposition rendered from the live service stats, wrapped in a minimal
/// HTTP/1.0 response so `curl http://ADDR/metrics` (or any scraper) works.
fn serve_metrics(listener: TcpListener, server: &Server<DemoApi>) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // Drain the scraper's request head before answering so the peer
        // never sees a reset from unread bytes; the content is ignored —
        // every request gets the same document.
        let mut head = [0u8; 1024];
        let _ = stream.read(&mut head);
        let body = server.service().stats().to_prometheus();
        let _ = write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
    }
}

/// One life of the demo: drive the traffic, print the ledger (fetched over
/// the wire, like any remote operator would).
fn run_life(server: &Server<DemoApi>) {
    drive_traffic(server);
    let mut observer = Client::connect(server.local_addr()).expect("handshake");
    println!("round trip: {:?}", observer.ping().expect("ping"));
    let stats = observer.stats().expect("stats over the wire");
    println!("{stats}\n");
    let per_request = stats.queries as f64 / stats.requests as f64;
    println!(
        "{} requests cost {} API queries — {per_request:.1} per request \
         (a lone Algorithm-1 run pays ≥ {} here)",
        stats.requests,
        stats.queries,
        DIM + 2
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen: Option<String> = None;
    let mut store_dir: Option<PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut model_id: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--listen", Some(addr)) => {
                listen = Some(addr.clone());
                i += 2;
            }
            ("--peer", Some(addr)) => {
                peers.push(addr.clone());
                i += 2;
            }
            ("--model-id", Some(id)) => {
                model_id = id.parse().expect("--model-id takes a u64");
                i += 2;
            }
            ("--store-dir", Some(dir)) => {
                store_dir = Some(PathBuf::from(dir));
                i += 2;
            }
            ("--metrics-addr", Some(addr)) => {
                metrics_addr = Some(addr.clone());
                i += 2;
            }
            ("--slow-ms", Some(ms)) => {
                slow_ms = Some(ms.parse().expect("--slow-ms takes milliseconds"));
                i += 2;
            }
            _ => {
                eprintln!(
                    "usage: interpretation_server [--listen ADDR] [--metrics-addr ADDR] \
                     [--slow-ms MS] [--store-dir DIR] [--peer ADDR]... [--model-id ID]"
                );
                std::process::exit(2);
            }
        }
    }

    // Slow-request log: any settled request over the threshold prints its
    // per-stage timeline to stderr (sampled; see openapi-trace::slowlog).
    if let Some(ms) = slow_ms {
        slowlog::set_threshold(Some(Duration::from_millis(ms)));
    }

    // Listen mode: a long-running server for remote clients.
    if let Some(addr) = listen {
        let server = build_server(&addr, store_dir.as_ref(), model_id);
        let bound: SocketAddr = server.local_addr();
        println!(
            "interpretation server listening on {bound} (protocol v{})",
            openapi_repro::net::VERSION
        );
        println!("  try: cargo run --release -p openapi-eval --bin openapi-exp -- \\");
        println!("         queries --service-clients 4 --remote {bound}");
        match &store_dir {
            Some(dir) => println!("  durable region store: {}", dir.display()),
            None => println!("  in-memory only (pass --store-dir DIR for restart durability)"),
        }
        // The anti-entropy fabric: gossip with each configured peer so
        // regions solved anywhere in the cluster are warm-served here.
        // Replication needs the durable store (it is what the digests
        // describe); without one the node would refuse every exchange.
        let _fabric = if peers.is_empty() {
            None
        } else if store_dir.is_none() {
            println!("  --peer ignored: replication requires --store-dir");
            None
        } else {
            println!("  anti-entropy peers: {}", peers.join(", "));
            Some(FabricNode::spawn(
                server.service().core(),
                FabricConfig {
                    peers: peers.clone(),
                    model_id,
                    ..FabricConfig::default()
                },
            ))
        };
        let metrics = metrics_addr.as_deref().map(|addr| {
            let listener = TcpListener::bind(addr).expect("metrics address must bind");
            let bound = listener.local_addr().expect("bound metrics address");
            println!("  metrics exposition: curl http://{bound}/metrics");
            listener
        });
        println!("serving until killed (ctrl-C) …");
        std::thread::scope(|scope| -> ! {
            if let Some(listener) = metrics {
                scope.spawn(|| serve_metrics(listener, &server));
            }
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        });
    }

    if metrics_addr.is_some() {
        println!("(--metrics-addr serves in --listen mode; the demo prints its stats inline)\n");
    }

    if !peers.is_empty() {
        println!("(--peer joins the fabric in --listen mode; the demo runs standalone)\n");
    }

    // Demo mode, life 1: serve the traffic cold (or warm, if the store
    // directory already holds a previous run's regions).
    let server = build_server("127.0.0.1:0", store_dir.as_ref(), model_id);
    println!(
        "serving {CLIENTS} TCP clients × {REQUESTS_PER_CLIENT} requests on {} …\n",
        server.local_addr()
    );
    run_life(&server);

    let Some(dir) = store_dir else {
        println!(
            "\n(no --store-dir: restart durability not demonstrated; pass \
             --store-dir DIR to see a restart re-serve without re-querying)"
        );
        drop(server);
        return;
    };

    // Life 2: close the server (drains in-flight tickets, final WAL
    // fsync), rebind against the same directory — a simulated
    // deploy/crash/scale-out — and replay the same traffic. Every region
    // solved in life 1 is re-served for one probe; the solve counter
    // stays at zero.
    server.close().expect("clean close flushes the WAL");
    println!("\n--- server restarted against {} ---\n", dir.display());
    let reborn = build_server("127.0.0.1:0", Some(&dir), model_id);
    println!(
        "recovered {} regions from the store before the first request",
        reborn.service().store().expect("store attached").len()
    );
    drive_traffic(&reborn);
    let stats = reborn.service().stats();
    println!("\n{stats}\n");
    println!(
        "after restart: {} Algorithm-1 solves, {} store hits — {} queries \
         for {} requests ({:.1} per request)",
        stats.misses,
        stats.store_hits,
        stats.queries,
        stats.requests,
        stats.queries as f64 / stats.requests as f64
    );
    reborn.close().expect("clean close");
}
