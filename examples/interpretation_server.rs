//! Interpretation server: many clients, one shared exact-interpretation
//! service — with an optional durable region store.
//!
//! Spins up an `openapi-serve` `InterpretationService` over a hidden ReLU
//! network (a PLNN — queries only, no parameter access), hammers it from
//! four client threads whose traffic overlaps on the same regions, and
//! prints the service statistics: the first request into each region pays
//! the Algorithm-1 solve, everyone else is served the exact cached
//! parameters for one membership probe — or coalesces onto a solve already
//! in flight. Run with:
//!
//! ```text
//! cargo run --release --example interpretation_server
//! ```
//!
//! With `--store-dir DIR`, the service is backed by an `openapi-store`
//! `RegionStore` under `DIR`, and the demo restarts itself: the second
//! service life replays the first life's write-ahead log and serves the
//! same traffic with **zero** additional Algorithm-1 solves — run it
//! twice and the *first* life of the second run is already warm:
//!
//! ```text
//! cargo run --release --example interpretation_server -- --store-dir /tmp/openapi-regions
//! ```

use openapi_repro::api::CountingApi;
use openapi_repro::nn::{Activation, Plnn};
use openapi_repro::prelude::*;
use openapi_repro::serve::CacheSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 50;

/// A prediction API reached over a network: every query pays a round trip.
/// This is the deployment reality the paper's threat model describes — and
/// what makes the service's cache, store, and coalescing matter: queries,
/// not linear algebra, dominate the cost of an interpretation.
struct RemoteApi<M> {
    inner: M,
    round_trip: Duration,
}

impl<M: PredictionApi> PredictionApi for RemoteApi<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        std::thread::sleep(self.round_trip);
        self.inner.predict(x)
    }
}

type DemoApi = CountingApi<RemoteApi<Plnn>>;

/// Builds the demo service: with a store directory, solved regions are
/// durable; without one, the service is memory-only.
fn build_service(store_dir: Option<&PathBuf>) -> InterpretationService<DemoApi> {
    // Somebody else's model behind an API boundary: a 6-input, 3-class
    // ReLU network, reachable only over a ~300 µs round trip. The counter
    // meters what the audit traffic costs. (Same seed every life: the
    // *model* persists across our simulated restarts, as it would in
    // production — only our service process restarts.)
    let mut rng = StdRng::seed_from_u64(7);
    let hidden_model = Plnn::mlp(&[6, 12, 8, 3], Activation::ReLU, &mut rng);
    let api = CountingApi::new(RemoteApi {
        inner: hidden_model,
        round_trip: Duration::from_micros(300),
    });
    let config = ServiceConfig {
        workers: CLIENTS,
        ..ServiceConfig::default()
    };
    match store_dir {
        Some(dir) => InterpretationService::open(api, config, dir)
            .expect("store directory must open (is it a store?)"),
        None => InterpretationService::new(api, config),
    }
}

/// Four clients, each interpreting 50 predictions. Instances are drawn
/// from a handful of anchor points with small jitter, so the traffic has
/// the shape real serving sees: many users, few hot regions — which is
/// exactly what the Theorem-2 cache (and store) exploit.
fn drive_traffic(service: &InterpretationService<DemoApi>) {
    let dim = 6;
    let anchors: Vec<Vector> = (0..5)
        .map(|a| {
            Vector(
                (0..dim)
                    .map(|j| ((a * dim + j) as f64 * 0.83).sin())
                    .collect(),
            )
        })
        .collect();
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let (service, anchors) = (service, &anchors);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                let tickets: Vec<Ticket> = (0..REQUESTS_PER_CLIENT)
                    .map(|_| {
                        let anchor = &anchors[rng.gen_range(0..anchors.len())];
                        let mut x = anchor.clone();
                        for v in x.iter_mut() {
                            *v += rng.gen_range(-0.01..0.01);
                        }
                        let class = service.api().predict_label(x.as_slice());
                        service.submit_instance(x, class)
                    })
                    .collect();
                for ticket in tickets {
                    ticket.wait().expect("interior instances interpret");
                }
            });
        }
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let store_dir = match args.as_slice() {
        [] => None,
        [flag, dir] if flag == "--store-dir" => Some(PathBuf::from(dir)),
        _ => {
            eprintln!("usage: interpretation_server [--store-dir DIR]");
            std::process::exit(2);
        }
    };

    // Life 1: serve the traffic cold (or warm, if the directory already
    // holds a previous run's regions).
    let service = build_service(store_dir.as_ref());
    println!("serving {CLIENTS} clients × {REQUESTS_PER_CLIENT} requests …\n");
    drive_traffic(&service);

    // The ledger: misses are the only full Algorithm-1 solves; hits,
    // store hits, and coalesced requests each paid one membership probe.
    let stats = service.stats();
    println!("{stats}\n");
    let per_request = stats.queries as f64 / stats.requests as f64;
    println!(
        "{} requests cost {} API queries — {per_request:.1} per request \
         (a lone Algorithm-1 run pays ≥ {} here)",
        stats.requests,
        stats.queries,
        6 + 2
    );

    // Warm starts, tier by tier.
    let bytes = service.snapshot_cache().to_bytes();
    println!(
        "\ncache snapshot: {} regions, {} bytes — a one-shot copy another \
         service can restore",
        service.cache().len(),
        bytes.len()
    );
    let restored = CacheSnapshot::from_bytes(&bytes).expect("snapshot round-trips");
    println!("restored entries: {}", restored.entries.len());

    let Some(dir) = store_dir else {
        println!(
            "\n(no --store-dir: restart durability not demonstrated; pass \
             --store-dir DIR to see a restart re-serve without re-querying)"
        );
        return;
    };

    // Life 2: close the service (final WAL fsync), reopen the same
    // directory — a simulated deploy/crash/scale-out — and replay the
    // same traffic. Every region solved in life 1 is re-served for one
    // probe; the solve counter stays at zero.
    service.close().expect("clean close flushes the WAL");
    println!("\n--- service restarted against {} ---\n", dir.display());
    let reborn = build_service(Some(&dir));
    println!(
        "recovered {} regions from the store before the first request",
        reborn.store().expect("store attached").len()
    );
    drive_traffic(&reborn);
    let stats = reborn.stats();
    println!("\n{stats}\n");
    println!(
        "after restart: {} Algorithm-1 solves, {} store hits — {} queries \
         for {} requests ({:.1} per request)",
        stats.misses,
        stats.store_hits,
        stats.queries,
        stats.requests,
        stats.queries as f64 / stats.requests as f64
    );
    reborn.close().expect("clean close");
}
