//! Interpretation server: many clients, one shared exact-interpretation
//! service.
//!
//! Spins up an `openapi-serve` `InterpretationService` over a hidden ReLU
//! network (a PLNN — queries only, no parameter access), hammers it from
//! four client threads whose traffic overlaps on the same regions, and
//! prints the service statistics: the first request into each region pays
//! the Algorithm-1 solve, everyone else is served the exact cached
//! parameters for one membership probe — or coalesces onto a solve already
//! in flight. Run with:
//!
//! ```text
//! cargo run --release --example interpretation_server
//! ```

use openapi_repro::api::CountingApi;
use openapi_repro::nn::{Activation, Plnn};
use openapi_repro::prelude::*;
use openapi_repro::serve::CacheSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 50;

/// A prediction API reached over a network: every query pays a round trip.
/// This is the deployment reality the paper's threat model describes — and
/// what makes the service's cache and coalescing matter: queries, not
/// linear algebra, dominate the cost of an interpretation.
struct RemoteApi<M> {
    inner: M,
    round_trip: Duration,
}

impl<M: PredictionApi> PredictionApi for RemoteApi<M> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn predict(&self, x: &[f64]) -> Vector {
        std::thread::sleep(self.round_trip);
        self.inner.predict(x)
    }
}

fn main() {
    // 1. Somebody else's model behind an API boundary: a 6-input, 3-class
    //    ReLU network, reachable only over a ~300 µs round trip. The
    //    counter meters what the audit traffic costs.
    let mut rng = StdRng::seed_from_u64(7);
    let hidden_model = Plnn::mlp(&[6, 12, 8, 3], Activation::ReLU, &mut rng);
    let dim = 6;

    // 2. The service: a worker pool over a sharded, bounded region cache.
    let service = InterpretationService::new(
        CountingApi::new(RemoteApi {
            inner: hidden_model,
            round_trip: Duration::from_micros(300),
        }),
        ServiceConfig {
            workers: CLIENTS,
            ..ServiceConfig::default()
        },
    );

    // 3. Four clients, each interpreting 50 predictions. Instances are
    //    drawn from a handful of anchor points with small jitter, so the
    //    traffic has the shape real serving sees: many users, few hot
    //    regions — which is exactly what the Theorem-2 cache exploits.
    let anchors: Vec<Vector> = (0..5)
        .map(|a| {
            Vector(
                (0..dim)
                    .map(|j| ((a * dim + j) as f64 * 0.83).sin())
                    .collect(),
            )
        })
        .collect();
    println!("serving {CLIENTS} clients × {REQUESTS_PER_CLIENT} requests …\n");
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let (service, anchors) = (&service, &anchors);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                let tickets: Vec<Ticket> = (0..REQUESTS_PER_CLIENT)
                    .map(|_| {
                        let anchor = &anchors[rng.gen_range(0..anchors.len())];
                        let mut x = anchor.clone();
                        for v in x.iter_mut() {
                            *v += rng.gen_range(-0.01..0.01);
                        }
                        let class = service.api().predict_label(x.as_slice());
                        service.submit_instance(x, class)
                    })
                    .collect();
                for ticket in tickets {
                    ticket.wait().expect("interior instances interpret");
                }
            });
        }
    });

    // 4. The ledger: misses are the only full Algorithm-1 solves; hits and
    //    coalesced requests each paid one membership probe.
    let stats = service.stats();
    println!("{stats}\n");
    let per_request = stats.queries as f64 / stats.requests as f64;
    println!(
        "{} requests cost {} API queries — {per_request:.1} per request \
         (a lone Algorithm-1 run pays ≥ {} here)",
        stats.requests,
        stats.queries,
        dim + 2
    );

    // 5. Warm starts: snapshot the solved regions, restore into a fresh
    //    service, and the same traffic is all cache hits.
    let bytes = service.snapshot_cache().to_bytes();
    println!(
        "\ncache snapshot: {} regions, {} bytes — a restarted service \
         warm-starts from it instead of re-solving",
        service.cache().len(),
        bytes.len()
    );
    let restored = CacheSnapshot::from_bytes(&bytes).expect("snapshot round-trips");
    println!("restored entries: {}", restored.entries.len());
}
