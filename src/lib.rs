#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Facade crate for the OpenAPI reproduction workspace.
//!
//! Re-exports every member crate under a stable, discoverable namespace so
//! that downstream users (and the `examples/` and `tests/` in this package)
//! can depend on a single crate:
//!
//! ```
//! use openapi_repro::prelude::*;
//! ```
//!
//! See the workspace `README.md` for the project overview,
//! `docs/ARCHITECTURE.md` for the tier-by-tier system design and its
//! mapping onto the paper, and `docs/PROTOCOL.md` for the byte-level wire
//! protocol of the `openapi-net` serving tier.

pub use openapi_api as api;
pub use openapi_core as core;
pub use openapi_data as data;
pub use openapi_fabric as fabric;
pub use openapi_linalg as linalg;
pub use openapi_lmt as lmt;
pub use openapi_metrics as metrics;
pub use openapi_net as net;
pub use openapi_nn as nn;
pub use openapi_serve as serve;
pub use openapi_store as store;
pub use openapi_sync as sync;
pub use openapi_trace as trace;

/// The most commonly used items across the workspace, in one import.
pub mod prelude {
    pub use openapi_api::{GradientOracle, GroundTruthOracle, PredictionApi};
    pub use openapi_core::batch::{BatchConfig, BatchInterpreter, BatchOutcome, BatchStats};
    pub use openapi_core::cache::{RegionCache, RegionCacheConfig};
    pub use openapi_core::decision::{Interpretation, PairwiseCoreParams, RegionFingerprint};
    pub use openapi_core::openapi::{OpenApiConfig, OpenApiInterpreter, OpenApiResult};
    pub use openapi_core::Method;
    pub use openapi_fabric::{FabricConfig, FabricNode};
    pub use openapi_linalg::{Matrix, Vector};
    pub use openapi_net::{Client, ClientError, ModelInfo, RemoteServed, Server, ServerConfig};
    pub use openapi_serve::{
        InterpretRequest, InterpretationService, ServeOutcome, ServiceConfig, ServiceCore,
        SharedCacheConfig, SharedRegionCache, Ticket,
    };
    pub use openapi_store::{RegionStore, StoreConfig, StoreError};
    pub use openapi_trace::{RequestSpan, Stage, TraceEvent};
}
